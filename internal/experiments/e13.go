package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"locksafe/internal/lockmgr"
	"locksafe/internal/model"
	"locksafe/internal/policy"
	txnruntime "locksafe/internal/runtime"
	"locksafe/internal/workload"
)

// E13Row is one measured configuration of the multi-core scaling study.
type E13Row struct {
	// Section is "lockmgr" (raw lock/unlock traffic against the manager)
	// or "runtime" (full transactions under a policy monitor).
	Section    string
	Policy     string
	Shards     int
	Goroutines int
	// OpsPerSec is lock+unlock pairs per second (lockmgr section).
	OpsPerSec float64
	// Throughput is commits per second (runtime section).
	Throughput float64
	Commits    int
	Aborts     int
	// AvgWaitUs is mean lock-wait per commit in microseconds (runtime
	// section).
	AvgWaitUs float64
}

// E13Scaling is the multi-core scaling study enabled by the sharded lock
// manager and the goroutine transaction runtime. It measures, on real
// cores and wall-clock time:
//
//  1. raw manager traffic — G goroutines hammering lock/unlock pairs over
//     a wide entity pool, for each shard count: the single-mutex manager
//     (shards=1) serializes them, the sharded one spreads them;
//  2. full transaction workloads under 2PL, DTR and altruistic monitors
//     via the goroutine runtime, per shard count;
//  3. a guaranteed cross-shard deadlock: a two-owner cycle whose edges
//     live in different shards, which only the cross-shard sweep can see
//     — exactly one owner must be refused and the other granted.
//
// Wall-clock numbers vary by machine and load, so the Report only fails
// on correctness (completion, accounting, cycle detection), never on
// speed; the measured tables are recorded in EXPERIMENTS.md.
func E13Scaling(seed int64, shardCounts, gorCounts []int) ([]E13Row, Report) {
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 4, 16}
	}
	if len(gorCounts) == 0 {
		gorCounts = []int{1, 4, 8}
	}
	var rows []E13Row
	var b strings.Builder
	var failed string

	// (1) Raw manager scaling.
	fmt.Fprintf(&b, "%-8s %-11s %7s %11s %14s %9s %8s\n",
		"section", "policy", "shards", "goroutines", "ops|commits/s", "aborts", "waitµs")
	for _, shards := range shardCounts {
		for _, g := range gorCounts {
			row := e13MgrRow(seed, shards, g)
			rows = append(rows, row)
			fmt.Fprintf(&b, "%-8s %-11s %7d %11d %14.0f %9d %8s\n",
				row.Section, row.Policy, row.Shards, row.Goroutines, row.OpsPerSec, row.Aborts, "-")
		}
	}

	// (2) Runtime workloads per policy and shard count.
	maxShards := shardCounts[0]
	for _, s := range shardCounts {
		if s > maxShards {
			maxShards = s
		}
	}
	runtimeShards := []int{1}
	if maxShards > 1 {
		runtimeShards = append(runtimeShards, maxShards)
	}
	const txns = 16
	for _, shards := range runtimeShards {
		for _, spec := range e13Workloads(seed, txns) {
			row, err := e13RuntimeRow(spec, shards, txns)
			if err != "" && failed == "" {
				failed = err
			}
			rows = append(rows, row)
			fmt.Fprintf(&b, "%-8s %-11s %7d %11d %14.1f %9d %8.0f\n",
				row.Section, row.Policy, row.Shards, row.Goroutines, row.Throughput, row.Aborts, row.AvgWaitUs)
		}
	}

	// (3) Cross-shard deadlock detection.
	victims, err := e13CrossShardCycle(maxShards)
	fmt.Fprintf(&b, "\ncross-shard deadlock: two-owner cycle spanning two shards of %d -> victims=%d", maxShards, victims)
	if err != "" {
		if failed == "" {
			failed = err
		}
		fmt.Fprintf(&b, " (%s)\n", err)
	} else {
		fmt.Fprintf(&b, " (exactly one refused, survivor granted)\n")
	}
	fmt.Fprintf(&b, "\nShape: with one shard every acquire/release serializes on one mutex, so\n")
	fmt.Fprintf(&b, "adding cores adds contention, not throughput; entity-hashed shards spread\n")
	fmt.Fprintf(&b, "independent traffic across mutexes while the blocked-path sweep still\n")
	fmt.Fprintf(&b, "catches cycles that no single shard can see.\n")
	return rows, Report{ID: "E13", Title: "multi-core scaling of the sharded lock manager", Text: b.String(), Failed: failed}
}

// e13MgrRow measures raw lock/unlock pairs per second: g goroutines over
// a 512-entity pool, disjoint-ish access patterns so the manager —
// not entity conflict — is the bottleneck being probed.
func e13MgrRow(seed int64, shards, g int) E13Row {
	const rounds = 4000
	m := lockmgr.NewSharded(shards)
	pool := make([]model.Entity, 512)
	for i := range pool {
		pool[i] = model.Entity(fmt.Sprintf("k%d", i))
	}
	var wg sync.WaitGroup
	start := time.Now()
	for owner := 0; owner < g; owner++ {
		wg.Add(1)
		go func(owner int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(owner)))
			for i := 0; i < rounds; i++ {
				e := pool[rng.Intn(len(pool))]
				// Single-entity holds cannot deadlock; an error here is a
				// conflict artifact we simply retry past.
				if err := m.Lock(owner, e, model.Exclusive); err == nil {
					_ = m.Unlock(owner, e)
				}
			}
		}(owner)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return E13Row{
		Section:    "lockmgr",
		Policy:     "-",
		Shards:     shards,
		Goroutines: g,
		OpsPerSec:  float64(g*rounds) / elapsed.Seconds(),
	}
}

type e13Workload struct {
	name string
	pol  policy.Policy
	sys  *model.System
}

// e13Workloads builds the contended transaction mixes: two-phase over
// random sorted entity subsets, DTR crabbing down one chain, and
// altruistic donation over the same chain.
func e13Workloads(seed int64, txns int) []e13Workload {
	rng := rand.New(rand.NewSource(seed))
	pool := make([]model.Entity, 24)
	for i := range pool {
		pool[i] = model.Entity(fmt.Sprintf("e%d", i))
	}
	var tp []model.Txn
	for i := 0; i < txns; i++ {
		k := 3 + rng.Intn(3)
		perm := append([]model.Entity(nil), pool...)
		rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		pick := append([]model.Entity(nil), perm[:k]...)
		sort.Slice(pick, func(a, b int) bool { return pick[a] < pick[b] })
		tp = append(tp, model.Txn{Steps: workload.TwoPhaseSteps(pick)})
	}

	chain := pool[:8]
	var dtr, altr []model.Txn
	for i := 0; i < txns; i++ {
		dtr = append(dtr, model.Txn{Steps: workload.DTRChainSteps(chain)})
		var steps []model.Step
		for _, e := range chain {
			steps = append(steps, model.LX(e), model.W(e), model.UX(e))
		}
		altr = append(altr, model.Txn{Steps: steps})
	}
	init := model.NewState(pool...)
	return []e13Workload{
		{name: "2PL", pol: policy.TwoPhase{}, sys: model.NewSystem(init, tp...)},
		{name: "DTR", pol: policy.DTR{}, sys: model.NewSystem(init, dtr...)},
		{name: "altruistic", pol: policy.Altruistic{}, sys: model.NewSystem(init, altr...)},
	}
}

func e13RuntimeRow(spec e13Workload, shards, txns int) (E13Row, string) {
	res, err := txnruntime.Run(spec.sys, txnruntime.Config{
		Policy:     spec.pol,
		Shards:     shards,
		Backoff:    50 * time.Microsecond,
		MaxRetries: 500,
	})
	row := E13Row{Section: "runtime", Policy: spec.name, Shards: shards, Goroutines: txns}
	if err != nil {
		return row, fmt.Sprintf("runtime %s shards=%d: %v", spec.name, shards, err)
	}
	m := res.Metrics
	row.Throughput = m.Throughput()
	row.Commits = m.Commits
	row.Aborts = m.Aborts()
	if m.Commits > 0 {
		row.AvgWaitUs = float64(m.Wait.Microseconds()) / float64(m.Commits)
	}
	if m.Commits+m.GaveUp != txns {
		return row, fmt.Sprintf("runtime %s shards=%d: commits %d + gaveup %d != %d", spec.name, shards, m.Commits, m.GaveUp, txns)
	}
	if m.Commits == 0 {
		return row, fmt.Sprintf("runtime %s shards=%d: nothing committed", spec.name, shards)
	}
	return row, ""
}

// e13CrossShardCycle manufactures the minimal two-owner cycle whose edges
// live in different shards and reports how many owners were refused.
func e13CrossShardCycle(shards int) (int, string) {
	if shards < 2 {
		shards = 2
	}
	m := lockmgr.NewSharded(shards)
	var a, b model.Entity
	for i := 0; ; i++ {
		e := model.Entity(fmt.Sprintf("c%d", i))
		if a == "" {
			a = e
			continue
		}
		if m.ShardOf(e) != m.ShardOf(a) {
			b = e
			break
		}
	}
	if err := m.Lock(1, a, model.Exclusive); err != nil {
		return 0, err.Error()
	}
	if err := m.Lock(2, b, model.Exclusive); err != nil {
		return 0, err.Error()
	}
	type res struct {
		owner int
		err   error
	}
	ch := make(chan res, 2)
	go func() { ch <- res{1, m.Lock(1, b, model.Exclusive)} }()
	go func() { ch <- res{2, m.Lock(2, a, model.Exclusive)} }()
	victims := 0
	for i := 0; i < 2; i++ {
		select {
		case r := <-ch:
			if r.err != nil {
				if !errors.Is(r.err, lockmgr.ErrDeadlock) {
					return victims, fmt.Sprintf("owner %d: unexpected error %v", r.owner, r.err)
				}
				victims++
				m.ReleaseAll(r.owner) // victim aborts; survivor drains
			}
		case <-time.After(30 * time.Second):
			return victims, "cross-shard cycle not detected: requests still parked"
		}
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
	if victims != 1 {
		return victims, fmt.Sprintf("victims = %d, want exactly 1", victims)
	}
	return victims, ""
}
