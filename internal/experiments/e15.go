package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"locksafe/internal/model"
	"locksafe/internal/policy"
	txnruntime "locksafe/internal/runtime"
	"locksafe/internal/workload"
)

// E15Row is one measured configuration of the gate-scaling study.
type E15Row struct {
	// Workload is "disjoint" (per-transaction private entities: zero
	// conflicts, the striping best case) or "zipf" (hot-key skewed
	// shared entities: heavy footprint overlap).
	Workload string
	// Gate is "serialized" (the single-mutex monitor gate) or
	// "striped:N" (N admission stripes).
	Gate       string
	Goroutines int
	Throughput float64 // commits per second
	Commits    int
	Aborts     int
}

// E15GateScaling measures what the footprint-striped admission gate buys
// over the serialized monitor gate it replaced. Two workload shapes run
// on the goroutine runtime under 2PL (whose footprints are local, so
// striping can spread them):
//
//   - disjoint: every transaction locks its own private entities — the
//     sharded lock manager already parallelizes the lock traffic, and
//     the serialized gate is the *only* remaining serial section, so
//     this is exactly the bottleneck E13 flattened on;
//   - zipf: transactions draw their entity sets Zipf(skew)-skewed from
//     a shared pool (workload.ZipfSubset), so footprints overlap on the
//     hot head and admissions serialize on shared stripes — striping's
//     worst realistic case.
//
// Wall-clock numbers vary by machine and load, so the Report only fails
// on correctness (completion, accounting, serializability — the latter
// verified inside runtime.Run), never on speed; measured tables are
// recorded in EXPERIMENTS.md with the usual single-core caveat.
func E15GateScaling(seed int64, stripeCounts, gorCounts []int) ([]E15Row, Report) {
	if len(stripeCounts) == 0 {
		stripeCounts = []int{4, 16}
	}
	if len(gorCounts) == 0 {
		gorCounts = []int{4, 16}
	}
	var rows []E15Row
	var b strings.Builder
	var failed string

	fmt.Fprintf(&b, "%-9s %-12s %11s %11s %8s %7s\n",
		"workload", "gate", "goroutines", "commits/s", "commits", "aborts")
	for _, wl := range []string{"disjoint", "zipf"} {
		for _, g := range gorCounts {
			gates := []gateCfg{{name: "serialized", serialized: true}}
			for _, s := range stripeCounts {
				gates = append(gates, gateCfg{name: fmt.Sprintf("striped:%d", s), stripes: s})
			}
			for _, gc := range gates {
				row, err := e15Row(seed, wl, g, gc)
				if err != "" && failed == "" {
					failed = err
				}
				rows = append(rows, row)
				fmt.Fprintf(&b, "%-9s %-12s %11d %11.0f %8d %7d\n",
					row.Workload, row.Gate, row.Goroutines, row.Throughput, row.Commits, row.Aborts)
			}
		}
	}
	fmt.Fprintf(&b, "\nShape: on the disjoint workload every event is footprint-disjoint, so\n")
	fmt.Fprintf(&b, "striped admission runs policy checks on all cores where the serialized\n")
	fmt.Fprintf(&b, "gate ran them one at a time; on the zipf workload hot-key admissions\n")
	fmt.Fprintf(&b, "share stripes and the gap narrows toward the serialized floor.\n")
	return rows, Report{ID: "E15", Title: "gate scaling: footprint-striped vs serialized admission", Text: b.String(), Failed: failed}
}

type gateCfg struct {
	name       string
	serialized bool
	stripes    int
}

// e15Workload builds the transaction system for one (workload, G) cell.
// Each transaction is one two-phase walk (lock+write each entity, then
// release everything) over enough entities that a commit costs dozens of
// gate admissions — so the gate, not goroutine startup, dominates.
func e15Workload(seed int64, wl string, g int) *model.System {
	const perTxn = 32
	rng := rand.New(rand.NewSource(seed))
	var txns []model.Txn
	var all []model.Entity
	switch wl {
	case "disjoint":
		txns, all = workload.DisjointTxns(g, perTxn)
	case "zipf":
		// One Zipf-hot subset per transaction: deadlock-free by pool
		// order, overlapping on the hot head.
		all = workload.ZipfPool(64)
		txns = workload.ZipfTxns(rng, all, g, perTxn/2, 1.4)
	}
	return model.NewSystem(model.NewState(all...), txns...)
}

// E15Reps is the best-of repetition count per cell; exported so
// lockbench can record the best-of policy in the bench artifact.
const E15Reps = 5

// e15Row measures one cell. Runs are short (a few hundred events), so
// each cell runs several times and reports the best throughput —
// correctness is asserted on every repetition.
func e15Row(seed int64, wl string, g int, gc gateCfg) (E15Row, string) {
	const reps = E15Reps
	sys := e15Workload(seed, wl, g)
	row := E15Row{Workload: wl, Gate: gc.name, Goroutines: g}
	for rep := 0; rep < reps; rep++ {
		res, err := txnruntime.Run(sys, txnruntime.Config{
			Policy:         policy.TwoPhase{},
			Shards:         16,
			GateStripes:    gc.stripes,
			SerializedGate: gc.serialized,
			Backoff:        50 * time.Microsecond,
			MaxRetries:     500,
		})
		if err != nil {
			return row, fmt.Sprintf("e15 %s %s g=%d: %v", wl, gc.name, g, err)
		}
		m := res.Metrics
		if m.Commits+m.GaveUp != len(sys.Txns) {
			return row, fmt.Sprintf("e15 %s %s g=%d: commits %d + gaveup %d != %d", wl, gc.name, g, m.Commits, m.GaveUp, len(sys.Txns))
		}
		if wl == "disjoint" && m.Commits != len(sys.Txns) {
			return row, fmt.Sprintf("e15 disjoint %s g=%d: only %d of %d committed (nothing can conflict)", gc.name, g, m.Commits, len(sys.Txns))
		}
		if m.Commits == 0 {
			return row, fmt.Sprintf("e15 %s %s g=%d: nothing committed", wl, gc.name, g)
		}
		if tp := m.Throughput(); tp > row.Throughput {
			row.Throughput = tp
			row.Commits = m.Commits
			row.Aborts = m.Aborts()
		}
	}
	return row, ""
}
