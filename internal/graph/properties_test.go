package graph

// testing/quick property tests on the graph substrate: random mutation
// sequences must preserve structural invariants, dominators must respect
// reachability, and forests must stay acyclic.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomMutations applies n random mutations to a fresh graph.
func randomMutations(rng *rand.Rand, n int) *Digraph {
	g := New()
	nodes := make([]Node, 8)
	for i := range nodes {
		nodes[i] = Node(fmt.Sprintf("v%d", i))
	}
	for i := 0; i < n; i++ {
		a := nodes[rng.Intn(len(nodes))]
		b := nodes[rng.Intn(len(nodes))]
		switch rng.Intn(5) {
		case 0:
			g.AddNode(a)
		case 1:
			g.AddEdge(a, b)
		case 2:
			g.RemoveEdge(a, b)
		case 3:
			g.RemoveNode(a)
		case 4:
			g.AddEdge(b, a)
		}
	}
	return g
}

func TestDigraphInvariantsUnderMutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomMutations(rng, 60)
		if err := g.Validate(); err != nil {
			t.Log(err)
			return false
		}
		// Edge count equals the length of Edges().
		if g.EdgeCount() != len(g.Edges()) {
			return false
		}
		// Clone equality.
		c := g.Clone()
		if c.NodeCount() != g.NodeCount() || c.EdgeCount() != g.EdgeCount() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDominatorRespectsReachability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomMutations(rng, 40)
		nodes := g.Nodes()
		if len(nodes) == 0 {
			return true
		}
		root := nodes[rng.Intn(len(nodes))]
		for trial := 0; trial < 10; trial++ {
			d := nodes[rng.Intn(len(nodes))]
			n := nodes[rng.Intn(len(nodes))]
			dom := g.Dominates(root, d, n)
			// If d dominates n and n is reachable, then removing d makes
			// n unreachable — verified by rebuilding without d.
			if dom && d != n && g.HasPath(root, n) {
				h := g.Clone()
				h.RemoveNode(d)
				if h.HasPath(root, n) {
					t.Logf("seed %d: Dominates(%s, %s, %s) true but path survives removal", seed, root, d, n)
					return false
				}
			}
			// Conversely, if removing d leaves a path, d must not
			// dominate.
			if !dom {
				h := g.Clone()
				h.RemoveNode(d)
				if d != n && !h.HasPath(root, n) && g.HasPath(root, n) {
					t.Logf("seed %d: Dominates false but removal cuts the path", seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestForestInvariantsUnderMutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fo := NewForest()
		nodes := make([]Node, 8)
		for i := range nodes {
			nodes[i] = Node(fmt.Sprintf("t%d", i))
		}
		for i := 0; i < 50; i++ {
			a := nodes[rng.Intn(len(nodes))]
			b := nodes[rng.Intn(len(nodes))]
			switch rng.Intn(4) {
			case 0:
				_ = fo.Add(a)
			case 1:
				_ = fo.Join(a, b)
			case 2:
				_ = fo.Delete(a)
			case 3:
				_ = fo.Graft(a, b)
			}
			if err := fo.Validate(); err != nil {
				t.Logf("seed %d step %d: %v", seed, i, err)
				return false
			}
		}
		// Every node's root must be a root.
		for _, n := range fo.Nodes() {
			r := fo.Root(n)
			if fo.Parent(r) != "" {
				return false
			}
		}
		// Roots() and Nodes() agree with parent structure.
		for _, r := range fo.Roots() {
			if fo.Parent(r) != "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTopologicalPathsAgree(t *testing.T) {
	// HasPath is reflexive-transitive: if a->b and b->c then path a~>c.
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "d")
	for _, from := range g.Nodes() {
		reach := g.Reachable(from)
		for _, to := range g.Nodes() {
			if reach[to] != g.HasPath(from, to) {
				t.Errorf("Reachable and HasPath disagree on %s~>%s", from, to)
			}
		}
	}
}
