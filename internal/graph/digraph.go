// Package graph provides the directed-graph substrate for the DDAG and DTR
// locking policies: mutable directed graphs with insertion and deletion of
// nodes and edges, rooted-DAG queries (roots, reachability, dominators),
// and the forest operations of the dynamic tree policy.
//
// Node names are the entity names of the database model; an edge (A, B) is
// itself an entity named "A->B" (Section 4 treats nodes and edges uniformly
// as entities).
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Node is a graph node, identified by name.
type Node string

// EdgeName returns the entity name of the edge (a, b), "a->b".
func EdgeName(a, b Node) string { return string(a) + "->" + string(b) }

// ParseEdgeName splits an entity name of the form "a->b".
func ParseEdgeName(s string) (a, b Node, ok bool) {
	i := strings.Index(s, "->")
	if i < 0 {
		return "", "", false
	}
	return Node(s[:i]), Node(s[i+2:]), true
}

// Digraph is a mutable directed graph.
type Digraph struct {
	succ map[Node]map[Node]bool
	pred map[Node]map[Node]bool
}

// New returns an empty directed graph.
func New() *Digraph {
	return &Digraph{
		succ: make(map[Node]map[Node]bool),
		pred: make(map[Node]map[Node]bool),
	}
}

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	c := New()
	for n := range g.succ {
		c.AddNode(n)
	}
	for a, ss := range g.succ {
		for b := range ss {
			c.AddEdge(a, b)
		}
	}
	return c
}

// HasNode reports whether n is in the graph.
func (g *Digraph) HasNode(n Node) bool {
	_, ok := g.succ[n]
	return ok
}

// AddNode inserts n (idempotent).
func (g *Digraph) AddNode(n Node) {
	if !g.HasNode(n) {
		g.succ[n] = make(map[Node]bool)
		g.pred[n] = make(map[Node]bool)
	}
}

// RemoveNode deletes n and all incident edges. It is a no-op if n is not
// present.
func (g *Digraph) RemoveNode(n Node) {
	if !g.HasNode(n) {
		return
	}
	for b := range g.succ[n] {
		delete(g.pred[b], n)
	}
	for a := range g.pred[n] {
		delete(g.succ[a], n)
	}
	delete(g.succ, n)
	delete(g.pred, n)
}

// HasEdge reports whether the edge (a, b) is present.
func (g *Digraph) HasEdge(a, b Node) bool { return g.succ[a][b] }

// AddEdge inserts the edge (a, b), adding missing endpoints.
func (g *Digraph) AddEdge(a, b Node) {
	g.AddNode(a)
	g.AddNode(b)
	g.succ[a][b] = true
	g.pred[b][a] = true
}

// RemoveEdge deletes the edge (a, b) if present.
func (g *Digraph) RemoveEdge(a, b Node) {
	if g.succ[a] != nil {
		delete(g.succ[a], b)
	}
	if g.pred[b] != nil {
		delete(g.pred[b], a)
	}
}

// NodeCount returns the number of nodes.
func (g *Digraph) NodeCount() int { return len(g.succ) }

// EdgeCount returns the number of edges.
func (g *Digraph) EdgeCount() int {
	n := 0
	for _, ss := range g.succ {
		n += len(ss)
	}
	return n
}

// Nodes returns all nodes in sorted order.
func (g *Digraph) Nodes() []Node {
	out := make([]Node, 0, len(g.succ))
	for n := range g.succ {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Succs returns the successors of n in sorted order.
func (g *Digraph) Succs(n Node) []Node { return sortedKeys(g.succ[n]) }

// Preds returns the predecessors of n in sorted order.
func (g *Digraph) Preds(n Node) []Node { return sortedKeys(g.pred[n]) }

func sortedKeys(m map[Node]bool) []Node {
	out := make([]Node, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns all edges sorted lexicographically.
func (g *Digraph) Edges() [][2]Node {
	var out [][2]Node
	for a, ss := range g.succ {
		for b := range ss {
			out = append(out, [2]Node{a, b})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Roots returns all nodes with no predecessors, sorted.
func (g *Digraph) Roots() []Node {
	var out []Node
	for n, ps := range g.pred {
		if len(ps) == 0 {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Acyclic reports whether the graph has no directed cycle.
func (g *Digraph) Acyclic() bool {
	indeg := make(map[Node]int, len(g.succ))
	for n := range g.succ {
		indeg[n] = len(g.pred[n])
	}
	var queue []Node
	for n, d := range indeg {
		if d == 0 {
			queue = append(queue, n)
		}
	}
	seen := 0
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for b := range g.succ[n] {
			indeg[b]--
			if indeg[b] == 0 {
				queue = append(queue, b)
			}
		}
	}
	return seen == len(g.succ)
}

// Reachable returns the set of nodes reachable from start (including
// start).
func (g *Digraph) Reachable(start Node) map[Node]bool {
	seen := map[Node]bool{}
	if !g.HasNode(start) {
		return seen
	}
	seen[start] = true
	stack := []Node{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for b := range g.succ[n] {
			if !seen[b] {
				seen[b] = true
				stack = append(stack, b)
			}
		}
	}
	return seen
}

// HasPath reports whether b is reachable from a.
func (g *Digraph) HasPath(a, b Node) bool {
	return g.Reachable(a)[b]
}

// Rooted reports whether the graph has a unique root from which every node
// is reachable, and returns that root.
func (g *Digraph) Rooted() (Node, bool) {
	roots := g.Roots()
	if len(roots) != 1 {
		return "", false
	}
	root := roots[0]
	if len(g.Reachable(root)) != g.NodeCount() {
		return "", false
	}
	return root, true
}

// Dominates reports whether d dominates n with respect to the given root:
// every path from root to n passes through d. By convention the root
// dominates every node (including itself), and a node dominates itself.
// If n is unreachable from root, Dominates reports true vacuously.
func (g *Digraph) Dominates(root, d, n Node) bool {
	// Every node dominates itself; unreachable nodes are dominated
	// vacuously.
	if d == n || !g.HasPath(root, n) {
		return true
	}
	// The empty path reaches the root, so nothing else dominates it.
	if n == root {
		return false
	}
	// Otherwise d dominates n iff n is unreachable from root once d is
	// removed (the search below never expands d).
	seen := map[Node]bool{root: true, d: true}
	stack := []Node{root}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == d {
			continue
		}
		for b := range g.succ[x] {
			if b == n {
				return false
			}
			if !seen[b] {
				seen[b] = true
				stack = append(stack, b)
			}
		}
	}
	return true
}

// DominatesAll reports whether d dominates every node of set with respect
// to root.
func (g *Digraph) DominatesAll(root, d Node, set []Node) bool {
	for _, n := range set {
		if !g.Dominates(root, d, n) {
			return false
		}
	}
	return true
}

// String renders the graph as "a->b, a->c; isolated: d".
func (g *Digraph) String() string {
	edges := g.Edges()
	parts := make([]string, 0, len(edges))
	for _, e := range edges {
		parts = append(parts, EdgeName(e[0], e[1]))
	}
	var isolated []string
	for _, n := range g.Nodes() {
		if len(g.succ[n]) == 0 && len(g.pred[n]) == 0 {
			isolated = append(isolated, string(n))
		}
	}
	s := strings.Join(parts, ", ")
	if len(isolated) > 0 {
		if s != "" {
			s += "; "
		}
		s += "isolated: " + strings.Join(isolated, ", ")
	}
	if s == "" {
		return "(empty)"
	}
	return s
}

// Validate checks structural invariants (succ/pred symmetry); it is used
// by tests and returns a descriptive error on corruption.
func (g *Digraph) Validate() error {
	for a, ss := range g.succ {
		for b := range ss {
			if !g.pred[b][a] {
				return fmt.Errorf("graph: edge %s missing pred mirror", EdgeName(a, b))
			}
		}
	}
	for b, ps := range g.pred {
		for a := range ps {
			if !g.succ[a][b] {
				return fmt.Errorf("graph: edge %s missing succ mirror", EdgeName(a, b))
			}
		}
	}
	return nil
}
