package graph

import "testing"

func buildForest(t *testing.T) *Forest {
	t.Helper()
	f := NewForest()
	for _, n := range []Node{"1", "2", "3", "4", "5"} {
		if err := f.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	// Tree: 1(2(4), 3); separate tree: 5. DT1 joins are root-to-root, so
	// build bottom-up: hang 4 under 2 while 2 is still a root.
	if err := f.Join("2", "4"); err != nil {
		t.Fatal(err)
	}
	if err := f.Join("1", "2"); err != nil {
		t.Fatal(err)
	}
	if err := f.Join("1", "3"); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestForestBasics(t *testing.T) {
	f := buildForest(t)
	if f.Len() != 5 {
		t.Fatalf("Len = %d", f.Len())
	}
	if f.Root("4") != "1" || f.Root("5") != "5" {
		t.Error("Root wrong")
	}
	if !f.SameTree("3", "4") || f.SameTree("4", "5") {
		t.Error("SameTree wrong")
	}
	if f.Parent("2") != "1" || f.Parent("1") != "" {
		t.Error("Parent wrong")
	}
	roots := f.Roots()
	if len(roots) != 2 || roots[0] != "1" || roots[1] != "5" {
		t.Errorf("Roots = %v", roots)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestForestJoinSemantics(t *testing.T) {
	f := buildForest(t)
	// Join by non-root members: root of 5's tree becomes child of root of
	// 4's tree.
	if err := f.Join("4", "5"); err != nil {
		t.Fatal(err)
	}
	if f.Parent("5") != "1" {
		t.Errorf("after Join(4, 5), parent(5) = %q, want 1 (the root)", f.Parent("5"))
	}
	// Joining within the same tree is a no-op.
	before := f.String()
	if err := f.Join("2", "3"); err != nil {
		t.Fatal(err)
	}
	if f.String() != before {
		t.Error("same-tree Join must be a no-op")
	}
	if err := f.Join("2", "zzz"); err == nil {
		t.Error("Join with absent node must fail")
	}
}

func TestForestAddErrors(t *testing.T) {
	f := NewForest()
	if err := f.Add("a"); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("a"); err == nil {
		t.Error("duplicate Add must fail")
	}
}

func TestForestDelete(t *testing.T) {
	f := buildForest(t)
	if err := f.Delete("2"); err != nil {
		t.Fatal(err)
	}
	if f.Has("2") {
		t.Error("2 must be gone")
	}
	if f.Parent("4") != "" {
		t.Error("orphaned child must become a root")
	}
	if err := f.Delete("zzz"); err == nil {
		t.Error("deleting absent node must fail")
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAncestryAndPaths(t *testing.T) {
	f := buildForest(t)
	if !f.IsAncestor("1", "4") || !f.IsAncestor("2", "4") || !f.IsAncestor("4", "4") {
		t.Error("IsAncestor wrong")
	}
	if f.IsAncestor("3", "4") || f.IsAncestor("4", "1") {
		t.Error("phantom ancestry")
	}
	if f.IsAncestor("zzz", "4") || f.IsAncestor("1", "zzz") {
		t.Error("absent nodes are never related")
	}
	p := f.PathFromRoot("4")
	if len(p) != 3 || p[0] != "1" || p[1] != "2" || p[2] != "4" {
		t.Errorf("PathFromRoot = %v", p)
	}
	if f.PathFromRoot("zzz") != nil {
		t.Error("PathFromRoot of absent node must be nil")
	}
	d := f.Descendants("2")
	if len(d) != 2 || d[0] != "2" || d[1] != "4" {
		t.Errorf("Descendants = %v", d)
	}
}

func TestForestChildrenSorted(t *testing.T) {
	f := buildForest(t)
	kids := f.Children("1")
	if len(kids) != 2 || kids[0] != "2" || kids[1] != "3" {
		t.Errorf("Children = %v", kids)
	}
}

func TestForestString(t *testing.T) {
	if NewForest().String() != "(empty forest)" {
		t.Error("empty forest string")
	}
	f := buildForest(t)
	if got := f.String(); got != "1(2(4),3); 5" {
		t.Errorf("String = %q", got)
	}
}

func TestForestClone(t *testing.T) {
	f := buildForest(t)
	c := f.Clone()
	if err := c.Delete("4"); err != nil {
		t.Fatal(err)
	}
	if !f.Has("4") {
		t.Error("clone leaked into original")
	}
}
