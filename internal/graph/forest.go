package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Forest is the database forest maintained by the dynamic tree (DTR)
// policy: a set of rooted trees over nodes, supporting the operations of
// rules DT0–DT3 — joining trees by drawing an edge from one root to
// another, adding fresh entities, and deleting nodes.
//
// The forest stores, per node, its parent (or "" for roots).
type Forest struct {
	parent map[Node]Node
}

// NewForest returns the empty forest (rule DT0).
func NewForest() *Forest { return &Forest{parent: make(map[Node]Node)} }

// Clone returns a deep copy.
func (f *Forest) Clone() *Forest {
	c := NewForest()
	for n, p := range f.parent {
		c.parent[n] = p
	}
	return c
}

// Has reports whether n is in the forest.
func (f *Forest) Has(n Node) bool {
	_, ok := f.parent[n]
	return ok
}

// Add inserts n as a new isolated root. It is an error if n is present.
func (f *Forest) Add(n Node) error {
	if f.Has(n) {
		return fmt.Errorf("graph: node %s already in forest", n)
	}
	f.parent[n] = ""
	return nil
}

// Parent returns the parent of n ("" if n is a root or absent).
func (f *Forest) Parent(n Node) Node { return f.parent[n] }

// Root returns the root of the tree containing n (n itself if a root), or
// "" if n is absent.
func (f *Forest) Root(n Node) Node {
	if !f.Has(n) {
		return ""
	}
	for f.parent[n] != "" {
		n = f.parent[n]
	}
	return n
}

// SameTree reports whether a and b belong to the same tree.
func (f *Forest) SameTree(a, b Node) bool {
	return f.Has(a) && f.Has(b) && f.Root(a) == f.Root(b)
}

// Join draws an edge from the root of the tree containing a to the root of
// the tree containing b (rule DT1): root(b) becomes a child of root(a).
// It is a no-op if they are already in the same tree.
func (f *Forest) Join(a, b Node) error {
	if !f.Has(a) || !f.Has(b) {
		return fmt.Errorf("graph: Join(%s, %s): node not in forest", a, b)
	}
	ra, rb := f.Root(a), f.Root(b)
	if ra == rb {
		return nil
	}
	f.parent[rb] = ra
	return nil
}

// Graft makes child (which must currently be a root) a child of parent.
// It supports DT1's "connect them to form a tree" construction, in which
// fresh entities may be wired into an arbitrary tree shape before the
// root-to-root Join.
func (f *Forest) Graft(parent, child Node) error {
	if !f.Has(parent) || !f.Has(child) {
		return fmt.Errorf("graph: Graft(%s, %s): node not in forest", parent, child)
	}
	if f.parent[child] != "" {
		return fmt.Errorf("graph: Graft(%s, %s): child is not a root", parent, child)
	}
	if f.Root(parent) == child {
		return fmt.Errorf("graph: Graft(%s, %s): would create a cycle", parent, child)
	}
	f.parent[child] = parent
	return nil
}

// Delete removes n from the forest (rule DT3's mechanics): n's children
// become roots. Whether deletion is *allowed* is the policy's decision,
// not the forest's.
func (f *Forest) Delete(n Node) error {
	if !f.Has(n) {
		return fmt.Errorf("graph: Delete(%s): node not in forest", n)
	}
	for c, p := range f.parent {
		if p == n {
			f.parent[c] = ""
		}
	}
	delete(f.parent, n)
	return nil
}

// Children returns the children of n in sorted order.
func (f *Forest) Children(n Node) []Node {
	var out []Node
	for c, p := range f.parent {
		if p == n {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Roots returns the roots of all trees in sorted order.
func (f *Forest) Roots() []Node {
	var out []Node
	for n, p := range f.parent {
		if p == "" {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Nodes returns all nodes in sorted order.
func (f *Forest) Nodes() []Node {
	out := make([]Node, 0, len(f.parent))
	for n := range f.parent {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of nodes.
func (f *Forest) Len() int { return len(f.parent) }

// IsAncestor reports whether a is an ancestor of n (or equal to it).
func (f *Forest) IsAncestor(a, n Node) bool {
	if !f.Has(a) || !f.Has(n) {
		return false
	}
	for {
		if n == a {
			return true
		}
		p := f.parent[n]
		if p == "" {
			return false
		}
		n = p
	}
}

// Descendants returns n and all its descendants, sorted.
func (f *Forest) Descendants(n Node) []Node {
	var out []Node
	for _, m := range f.Nodes() {
		if f.IsAncestor(n, m) {
			out = append(out, m)
		}
	}
	return out
}

// PathFromRoot returns the nodes on the path from the root of n's tree
// down to n, inclusive.
func (f *Forest) PathFromRoot(n Node) []Node {
	if !f.Has(n) {
		return nil
	}
	var rev []Node
	for x := n; ; x = f.parent[x] {
		rev = append(rev, x)
		if f.parent[x] == "" {
			break
		}
	}
	out := make([]Node, len(rev))
	for i, x := range rev {
		out[len(rev)-1-i] = x
	}
	return out
}

// String renders each tree as "root(child(grand),child2)" joined by "; ".
func (f *Forest) String() string {
	if f.Len() == 0 {
		return "(empty forest)"
	}
	var render func(n Node) string
	render = func(n Node) string {
		kids := f.Children(n)
		if len(kids) == 0 {
			return string(n)
		}
		parts := make([]string, len(kids))
		for i, k := range kids {
			parts[i] = render(k)
		}
		return string(n) + "(" + strings.Join(parts, ",") + ")"
	}
	roots := f.Roots()
	parts := make([]string, len(roots))
	for i, r := range roots {
		parts[i] = render(r)
	}
	return strings.Join(parts, "; ")
}

// Validate checks the forest is acyclic and parents exist.
func (f *Forest) Validate() error {
	for n := range f.parent {
		seen := map[Node]bool{}
		for x := n; x != ""; x = f.parent[x] {
			if seen[x] {
				return fmt.Errorf("graph: cycle through %s", n)
			}
			seen[x] = true
			if p := f.parent[x]; p != "" && !f.Has(p) {
				return fmt.Errorf("graph: %s has missing parent %s", x, p)
			}
		}
	}
	return nil
}
