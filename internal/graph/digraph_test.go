package graph

import "testing"

// fig3 builds the rooted DAG of the paper's Fig. 3:
// 1 -> 2, 2 -> 3, 2 -> 4, 3 -> 5 (a small rooted DAG; node 1 is the root).
func fig3() *Digraph {
	g := New()
	g.AddEdge("1", "2")
	g.AddEdge("2", "3")
	g.AddEdge("2", "4")
	g.AddEdge("3", "5")
	return g
}

func TestAddRemove(t *testing.T) {
	g := New()
	g.AddNode("a")
	if !g.HasNode("a") || g.NodeCount() != 1 {
		t.Fatal("AddNode")
	}
	g.AddNode("a") // idempotent
	if g.NodeCount() != 1 {
		t.Fatal("AddNode must be idempotent")
	}
	g.AddEdge("a", "b")
	if !g.HasEdge("a", "b") || g.EdgeCount() != 1 || g.NodeCount() != 2 {
		t.Fatal("AddEdge")
	}
	g.RemoveEdge("a", "b")
	if g.HasEdge("a", "b") || g.EdgeCount() != 0 {
		t.Fatal("RemoveEdge")
	}
	g.AddEdge("a", "b")
	g.AddEdge("c", "b")
	g.RemoveNode("b")
	if g.HasNode("b") || g.EdgeCount() != 0 {
		t.Fatal("RemoveNode must remove incident edges")
	}
	g.RemoveNode("zzz") // no-op
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeNames(t *testing.T) {
	if EdgeName("a", "b") != "a->b" {
		t.Error("EdgeName")
	}
	a, b, ok := ParseEdgeName("x->y")
	if !ok || a != "x" || b != "y" {
		t.Error("ParseEdgeName")
	}
	if _, _, ok := ParseEdgeName("plain"); ok {
		t.Error("ParseEdgeName must reject non-edges")
	}
}

func TestRootsAndRooted(t *testing.T) {
	g := fig3()
	roots := g.Roots()
	if len(roots) != 1 || roots[0] != "1" {
		t.Fatalf("Roots = %v", roots)
	}
	root, ok := g.Rooted()
	if !ok || root != "1" {
		t.Fatalf("Rooted = %v %v", root, ok)
	}
	// Add a disconnected node: no longer rooted.
	g.AddNode("iso")
	if _, ok := g.Rooted(); ok {
		t.Error("graph with unreachable node must not be rooted")
	}
	// Two roots.
	h := New()
	h.AddEdge("r1", "x")
	h.AddEdge("r2", "x")
	if _, ok := h.Rooted(); ok {
		t.Error("two-root graph must not be rooted")
	}
}

func TestReachability(t *testing.T) {
	g := fig3()
	if !g.HasPath("1", "5") || !g.HasPath("2", "5") {
		t.Error("paths missing")
	}
	if g.HasPath("4", "5") || g.HasPath("5", "1") {
		t.Error("phantom paths")
	}
	if !g.HasPath("3", "3") {
		t.Error("trivial path")
	}
	if len(g.Reachable("zzz")) != 0 {
		t.Error("Reachable of absent node must be empty")
	}
}

func TestAcyclic(t *testing.T) {
	g := fig3()
	if !g.Acyclic() {
		t.Error("fig3 is a DAG")
	}
	g.AddEdge("5", "1")
	if g.Acyclic() {
		t.Error("cycle not detected")
	}
	if !New().Acyclic() {
		t.Error("empty graph is acyclic")
	}
}

func TestDominates(t *testing.T) {
	g := fig3()
	cases := []struct {
		d, n Node
		want bool
	}{
		{"1", "5", true},  // root dominates everything
		{"2", "5", true},  // all paths to 5 go through 2
		{"3", "5", true},  // 3 is 5's only predecessor
		{"4", "5", false}, // 4 not on the path
		{"5", "5", true},  // self-domination
		{"3", "4", false},
		{"2", "2", true},
	}
	for _, c := range cases {
		if got := g.Dominates("1", c.d, c.n); got != c.want {
			t.Errorf("Dominates(1, %s, %s) = %v, want %v", c.d, c.n, got, c.want)
		}
	}
	// Diamond: 1->2, 1->3, 2->4, 3->4. Neither 2 nor 3 dominates 4.
	d := New()
	d.AddEdge("1", "2")
	d.AddEdge("1", "3")
	d.AddEdge("2", "4")
	d.AddEdge("3", "4")
	if d.Dominates("1", "2", "4") || d.Dominates("1", "3", "4") {
		t.Error("diamond: neither branch dominates the join")
	}
	if !d.Dominates("1", "1", "4") {
		t.Error("diamond: root dominates the join")
	}
	if !d.DominatesAll("1", "1", []Node{"2", "3", "4"}) {
		t.Error("DominatesAll from root")
	}
	if d.DominatesAll("1", "2", []Node{"2", "4"}) {
		t.Error("DominatesAll must fail when one node escapes")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := fig3()
	c := g.Clone()
	c.AddEdge("5", "6")
	if g.HasNode("6") {
		t.Error("clone leaked into original")
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSuccsPredsSorted(t *testing.T) {
	g := New()
	g.AddEdge("a", "z")
	g.AddEdge("a", "b")
	s := g.Succs("a")
	if len(s) != 2 || s[0] != "b" || s[1] != "z" {
		t.Errorf("Succs = %v", s)
	}
	g.AddEdge("q", "z")
	p := g.Preds("z")
	if len(p) != 2 || p[0] != "a" || p[1] != "q" {
		t.Errorf("Preds = %v", p)
	}
}

func TestStringRendering(t *testing.T) {
	if New().String() != "(empty)" {
		t.Error("empty graph string")
	}
	g := New()
	g.AddEdge("a", "b")
	g.AddNode("c")
	s := g.String()
	if s != "a->b; isolated: c" {
		t.Errorf("String = %q", s)
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New()
	g.AddEdge("b", "a")
	g.AddEdge("a", "c")
	g.AddEdge("a", "b")
	e := g.Edges()
	if len(e) != 3 || e[0] != [2]Node{"a", "b"} || e[2] != [2]Node{"b", "a"} {
		t.Errorf("Edges = %v", e)
	}
}
