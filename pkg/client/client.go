// Package client is the Go client of the lockd network lock service: it
// speaks the length-prefixed frame protocol of internal/wire (specified
// in docs/PROTOCOL.md; protocol version 4 — binary codec plus session
// resumption — by default, versions 3 and 2 via DialVersion) over one
// TCP connection and mirrors the session runtime's error vocabulary as
// exported sentinels.
//
// A transaction is declared in full at Open (the paper's policies are
// properties of declared bodies; the server also needs the body to
// re-run the transaction through cascade recovery), then driven in one
// of three ways, in ascending throughput:
//
//   - per-step: Session.Step / Session.Commit, one synchronous round
//     trip each — the right shape when the client computes between
//     steps and wants each admission confirmed before proceeding;
//   - pipelined: Session.StepAsync / Session.CommitAsync / Session.Flush
//     (or the Session.RunPipelined retry loop) fire the declared steps
//     without awaiting each response and reconcile at commit, so an
//     attempt costs ~one round trip instead of one per step;
//   - stored-procedure: Client.Run ships the declared body once and the
//     server drives the whole step/commit/abort/retry loop engine-side,
//     answering with a single terminal response.
//
// Under protocol version 4 a session that loses its connection is
// *parked* server-side, not aborted: its locks are released but the
// session stays open within its lease window, and Client.Resume on a
// fresh connection reattaches it by sid + resume token (issued at open)
// and re-drives the declared body from the first step.
//
// On ErrAborted the server has erased the attempt and released its
// locks; the session survives and the client retries from the first
// declared step (the Run variants do the retry loop, with capped,
// jittered backoff — see Backoff).
//
// Concurrency contract: a Client is safe for concurrent use and
// multiplexes any number of sessions over one connection (requests
// carry ids, frames may batch many messages, responses interleave). A
// Session is NOT safe for concurrent use — the async API pipelines
// requests *within* a session, but submission and reconciliation must
// stay on a single goroutine per session, matching the server's one
// worker goroutine per session. Pipelined requests are attempt-tagged
// so that late responses of a torn-down attempt are drained as stale
// rather than mistaken for the retry's.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"locksafe/internal/model"
	"locksafe/internal/wire"
)

// Sentinel errors, mirroring the wire codes (and internal/runtime's
// session vocabulary). Test with errors.Is.
var (
	ErrAborted      = errors.New("client: attempt aborted; retry from the first declared step")
	ErrAbandoned    = errors.New("client: session abandoned by the server")
	ErrLeaseExpired = errors.New("client: session lease expired")
	ErrClosed       = errors.New("client: server closed or draining")
	ErrSessionDone  = errors.New("client: session already finished")
	ErrStepMismatch = errors.New("client: step does not match the declared transaction")
	ErrProtocol     = errors.New("client: protocol error")
	// ErrVersion: the server refused our protocol version at handshake
	// (e.g. a version 3 client dialing a server that only speaks 2).
	ErrVersion = errors.New("client: protocol version refused by server")
	// ErrConnLost: the TCP connection died mid-flight (read or write
	// error, not a server refusal and not Client.Close). The critical
	// distinction from every other sentinel: a refusal proves the request
	// did NOT take effect, but a lost connection proves nothing — an
	// in-flight commit or Run may have landed server-side before the wire
	// broke. A caller seeing ErrConnLost must treat the outcome as
	// unknown and may only retry operations it knows to be idempotent or
	// whose duplicate effect it can tolerate; blind retry can double-run
	// a transaction.
	ErrConnLost = errors.New("client: connection lost; in-flight outcomes unknown")
)

// Backoff is the retry pacing of the Run variants, mirroring the
// runtime's Config backoff fields: the k-th retry waits k*Base, capped
// at Cap, then jittered down by up to Jitter so clients aborted by the
// same conflict do not retry in lockstep.
type Backoff struct {
	// Base is the linear base delay; 0 means no backoff at all.
	Base time.Duration
	// Cap bounds the linear growth. 0 selects the default 100*Base;
	// negative means uncapped.
	Cap time.Duration
	// Jitter is the fraction of the delay randomized away: the actual
	// delay is uniform in [(1-Jitter)*d, d]. 0 selects the default 0.5;
	// negative means none; values above 1 are clamped.
	Jitter float64
	// Rand is the jitter source in [0,1); nil means the process-global
	// math/rand. Inject for deterministic tests.
	Rand func() float64
}

// delay returns the k-th retry's pause.
func (b Backoff) delay(k int) time.Duration {
	d := time.Duration(k) * b.Base
	if d <= 0 {
		return 0
	}
	cap := b.Cap
	if cap == 0 {
		cap = 100 * b.Base
	}
	if cap > 0 && d > cap {
		d = cap
	}
	j := b.Jitter
	switch {
	case j == 0:
		j = 0.5
	case j < 0:
		j = 0
	case j > 1:
		j = 1
	}
	if j > 0 {
		r := b.Rand
		if r == nil {
			r = rand.Float64
		}
		d = time.Duration(float64(d) * (1 - j*r()))
	}
	return d
}

// Client is one connection to a lockd server. Safe for concurrent use.
type Client struct {
	nc      net.Conn
	version int          // negotiated protocol version (wire.VersionJSON through wire.Version)
	rd      *wire.Reader // owned by readLoop; codec switched at handshake
	wr      *wire.Writer // owned by writeLoop; codec switched at handshake

	mu     sync.Mutex // pending map, id counter, outgoing queue, terminal error
	nextID uint64
	pend   map[uint64]chan wire.Response
	dead   error
	outq   []wire.Request
	spare  []wire.Request // recycled queue slice from the writer's last drain
	wstop  bool

	wake chan struct{} // kicks the writer; buffered 1

	chpool sync.Pool // recycled response channels (cap-1 chan wire.Response)

	policy string
}

// Dial connects, performs the version handshake (negotiating protocol
// version 4: the binary codec plus session resumption) and returns the
// client.
func Dial(addr string) (*Client, error) {
	return DialVersion(addr, wire.Version)
}

// DialVersion is Dial pinned to a specific protocol version:
// wire.Version (4, binary codec + resume), wire.VersionBinary (3,
// binary codec) or wire.VersionJSON (2, JSON codec — what a
// not-yet-upgraded client in the field speaks).
func DialVersion(addr string, version int) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return handshake(nc, version)
}

// New wraps an established connection (tests use net.Pipe or an
// in-process listener) and performs the version handshake.
func New(nc net.Conn) (*Client, error) {
	return handshake(nc, wire.Version)
}

// NewVersion is New pinned to a specific protocol version.
func NewVersion(nc net.Conn, version int) (*Client, error) {
	return handshake(nc, version)
}

func handshake(nc net.Conn, version int) (*Client, error) {
	if version != wire.Version && version != wire.VersionBinary && version != wire.VersionJSON {
		nc.Close()
		return nil, fmt.Errorf("%w: this client speaks protocol versions %d through %d, not %d",
			ErrProtocol, wire.VersionJSON, wire.Version, version)
	}
	c := &Client{
		nc:      nc,
		version: version,
		rd:      wire.NewReader(nc),
		wr:      wire.NewWriter(nc),
		pend:    make(map[uint64]chan wire.Response),
		wake:    make(chan struct{}, 1),
	}
	go c.readLoop()
	go c.writeLoop()
	resp, err := c.roundTrip(wire.Request{Op: wire.OpHello, Version: version})
	if err != nil {
		// A transport death has already recorded ErrConnLost (fail is
		// first-wins); a server refusal becomes a deliberate close.
		c.fail(ErrClosed, err)
		return nil, err
	}
	if version >= wire.VersionBinary {
		// The hello exchange is JSON under every version; with version 3
		// or 4 agreed, everything after it is binary. The server cannot
		// emit a binary frame before answering our hello and we cannot
		// have queued another request yet (the handshake is synchronous),
		// so both switches land between frames on both streams.
		c.rd.SetCodec(wire.CodecBinary)
		c.wr.SetCodec(wire.CodecBinary)
	}
	c.policy = resp.Policy
	return c, nil
}

// binary reports whether the negotiated codec ships compact steps.
func (c *Client) binary() bool { return c.version >= wire.VersionBinary }

// Policy returns the server's policy name, as reported at handshake.
func (c *Client) Policy() string { return c.policy }

// Close tears the connection down. The server aborts this connection's
// unfinished sessions, releasing their locks. Requests failing after
// Close wrap ErrClosed — a deliberate local shutdown, not ErrConnLost.
func (c *Client) Close() error {
	c.fail(ErrClosed, errors.New("client closed"))
	return nil
}

// fail records the terminal error (wrapping the given sentinel), fails
// every pending request, stops the writer and closes the connection.
// Idempotent (first error wins — so a Close racing a transport death
// reports whichever happened first).
func (c *Client) fail(base, err error) {
	c.mu.Lock()
	if c.dead == nil {
		c.dead = fmt.Errorf("%w: %v", base, err)
	}
	for id, ch := range c.pend {
		close(ch)
		delete(c.pend, id)
	}
	c.wstop = true
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	c.nc.Close()
}

// failConn is fail for transport deaths: the connection broke under us
// (rather than being closed by us), so pending and future requests wrap
// ErrConnLost — their outcomes are unknown, not refused.
func (c *Client) failConn(err error) {
	c.fail(ErrConnLost, err)
}

func (c *Client) deadErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// readLoop routes responses — possibly many per frame — to their
// waiting requests by id.
func (c *Client) readLoop() {
	defer c.rd.Release()
	for {
		resps, err := c.rd.ReadResponses()
		if err != nil {
			c.failConn(err)
			return
		}
		for i := range resps {
			resp := resps[i]
			c.mu.Lock()
			ch := c.pend[resp.ID]
			delete(c.pend, resp.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- resp
			}
		}
	}
}

// writeLoop is the coalescing writer: it drains the whole outgoing
// queue per iteration into batch frames on a buffered writer and only
// flushes when the queue runs empty, so a pipelined burst costs one
// flush (and typically one syscall) instead of one per request.
func (c *Client) writeLoop() {
	defer c.wr.Release()
	for {
		c.mu.Lock()
		batch := c.outq
		c.outq = nil
		stop := c.wstop
		c.mu.Unlock()
		if len(batch) == 0 {
			if err := c.wr.Flush(); err != nil {
				c.failConn(err)
				return
			}
			if stop {
				return
			}
			<-c.wake
			continue
		}
		if err := c.wr.WriteRequests(batch); err != nil {
			c.failConn(err)
			return
		}
		// Recycle the drained queue so a steady-state pipeline stops
		// allocating request slices.
		c.mu.Lock()
		if c.spare == nil {
			c.spare = batch[:0]
		}
		c.mu.Unlock()
	}
}

// getch takes a response channel from the pool. A channel may be
// recycled (recycle) only after a successful receive — a channel the
// fail path may still close must never re-enter the pool.
func (c *Client) getch() chan wire.Response {
	if v := c.chpool.Get(); v != nil {
		return v.(chan wire.Response)
	}
	return make(chan wire.Response, 1)
}

// recycle returns a drained response channel to the pool.
func (c *Client) recycle(ch chan wire.Response) {
	c.chpool.Put(ch)
}

// send assigns the request an id, registers its response channel and
// queues it for the writer. The async submission primitive: callers
// receive the response later on ch (closed if the connection dies).
func (c *Client) send(req wire.Request) (uint64, chan wire.Response, error) {
	ch := c.getch()
	c.mu.Lock()
	if c.dead != nil {
		err := c.dead
		c.mu.Unlock()
		c.recycle(ch)
		return 0, nil, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pend[req.ID] = ch
	if c.outq == nil && c.spare != nil {
		c.outq, c.spare = c.spare, nil
	}
	c.outq = append(c.outq, req)
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	return req.ID, ch, nil
}

// roundTrip sends one request and waits for its response.
func (c *Client) roundTrip(req wire.Request) (wire.Response, error) {
	_, ch, err := c.send(req)
	if err != nil {
		return wire.Response{}, err
	}
	resp, ok := <-ch
	if !ok {
		return wire.Response{}, c.deadErr()
	}
	c.recycle(ch)
	if !resp.OK {
		return resp, codeError(resp)
	}
	return resp, nil
}

// codeError maps a refused response to the sentinel vocabulary.
func codeError(resp wire.Response) error {
	var base error
	switch resp.Code {
	case wire.CodeAborted:
		base = ErrAborted
	case wire.CodeAbandoned:
		base = ErrAbandoned
	case wire.CodeExpired:
		base = ErrLeaseExpired
	case wire.CodeClosed:
		base = ErrClosed
	case wire.CodeDone:
		base = ErrSessionDone
	case wire.CodeMismatch:
		base = ErrStepMismatch
	case wire.CodeVersion:
		base = ErrVersion
	default:
		base = ErrProtocol
	}
	return fmt.Errorf("%w: %s", base, resp.Err)
}

// Run executes the declared transaction in stored-procedure mode: the
// body travels once and the server drives the whole step/commit loop —
// including abort/retry with the engine's backoff — answering with a
// single terminal response. Nil means committed; the abort/retry cycle
// is invisible here (no ErrAborted), and terminal failures arrive as
// the usual sentinels. An ErrConnLost return is the one ambiguous case:
// the body travelled in full or in part and the connection died before
// the terminal response — the server may well have committed it, so
// resubmitting on a fresh connection can run the transaction twice.
func (c *Client) Run(tx model.Txn) error {
	req := wire.Request{Op: wire.OpRun, Name: tx.Name}
	if c.binary() {
		req.Table, req.CSteps = model.CompactTxn(tx.Steps)
	} else {
		req.Txn = wire.EncodeSteps(tx.Steps)
	}
	_, err := c.roundTrip(req)
	return err
}

// Stats polls the server's metrics snapshot.
func (c *Client) Stats() (wire.Stats, error) {
	resp, err := c.roundTrip(wire.Request{Op: wire.OpStats})
	if err != nil {
		return wire.Stats{}, err
	}
	if resp.Stats == nil {
		return wire.Stats{}, fmt.Errorf("%w: stats response without payload", ErrProtocol)
	}
	return *resp.Stats, nil
}

// Inspect fetches the server's diagnostic world-state snapshot (the
// surviving log, structural state, monitor key and serializability
// verdict). Heavyweight server-side; meant for tests, debugging and
// final verification, not routine polling.
func (c *Client) Inspect() (wire.Inspect, error) {
	resp, err := c.roundTrip(wire.Request{Op: wire.OpInspect})
	if err != nil {
		return wire.Inspect{}, err
	}
	if resp.Inspect == nil {
		return wire.Inspect{}, fmt.Errorf("%w: inspect response without payload", ErrProtocol)
	}
	return *resp.Inspect, nil
}
