// Package client is the Go client of the lockd network lock service: it
// speaks the length-prefixed JSON protocol of internal/wire (specified
// in docs/PROTOCOL.md) over one TCP connection, supports pipelined
// concurrent sessions, and mirrors the session runtime's error
// vocabulary as exported sentinels.
//
// A transaction is declared in full at Open (the paper's policies are
// properties of declared bodies; the server also needs the body to
// re-run the transaction through cascade recovery), then driven step by
// step:
//
//	c, _ := client.Dial(addr)
//	s, _ := c.Open(model.Txn{Steps: []model.Step{model.LX("a"), model.W("a"), model.UX("a")}})
//	for _, st := range s.Declared().Steps { ... s.Step(st) ... }
//	s.Commit()
//
// On ErrAborted the server has erased the attempt and released its
// locks; the session survives and the client retries from the first
// declared step (Session.Run does the retry loop). All other session
// errors are terminal. A Client is safe for concurrent use; a Session
// is not (one goroutine per session, like the server's one worker per
// session).
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"locksafe/internal/model"
	"locksafe/internal/wire"
)

// Sentinel errors, mirroring the wire codes (and internal/runtime's
// session vocabulary). Test with errors.Is.
var (
	ErrAborted      = errors.New("client: attempt aborted; retry from the first declared step")
	ErrAbandoned    = errors.New("client: session abandoned by the server")
	ErrLeaseExpired = errors.New("client: session lease expired")
	ErrClosed       = errors.New("client: server closed or draining")
	ErrSessionDone  = errors.New("client: session already finished")
	ErrStepMismatch = errors.New("client: step does not match the declared transaction")
	ErrProtocol     = errors.New("client: protocol error")
)

// Client is one connection to a lockd server. Safe for concurrent use.
type Client struct {
	nc net.Conn

	wmu    sync.Mutex // serializes request frames
	mu     sync.Mutex // pending map + id counter + terminal error
	nextID uint64
	pend   map[uint64]chan wire.Response
	dead   error

	policy string
}

// Dial connects, performs the version handshake and returns the client.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return handshake(nc)
}

// New wraps an established connection (tests use net.Pipe or an
// in-process listener) and performs the version handshake.
func New(nc net.Conn) (*Client, error) {
	return handshake(nc)
}

func handshake(nc net.Conn) (*Client, error) {
	c := &Client{nc: nc, pend: make(map[uint64]chan wire.Response)}
	go c.readLoop()
	resp, err := c.roundTrip(wire.Request{Op: wire.OpHello, Version: wire.Version})
	if err != nil {
		nc.Close()
		return nil, err
	}
	c.policy = resp.Policy
	return c, nil
}

// Policy returns the server's policy name, as reported at handshake.
func (c *Client) Policy() string { return c.policy }

// Close tears the connection down. The server aborts this connection's
// unfinished sessions, releasing their locks.
func (c *Client) Close() error { return c.nc.Close() }

// readLoop routes responses to their waiting requests by id.
func (c *Client) readLoop() {
	for {
		var resp wire.Response
		if err := wire.ReadFrame(c.nc, &resp); err != nil {
			c.mu.Lock()
			c.dead = fmt.Errorf("%w: %v", ErrClosed, err)
			for id, ch := range c.pend {
				close(ch)
				delete(c.pend, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch := c.pend[resp.ID]
		delete(c.pend, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// roundTrip sends one request and waits for its response.
func (c *Client) roundTrip(req wire.Request) (wire.Response, error) {
	ch := make(chan wire.Response, 1)
	c.mu.Lock()
	if c.dead != nil {
		err := c.dead
		c.mu.Unlock()
		return wire.Response{}, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pend[req.ID] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := wire.WriteFrame(c.nc, req)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pend, req.ID)
		c.mu.Unlock()
		c.nc.Close()
		return wire.Response{}, fmt.Errorf("%w: %v", ErrClosed, err)
	}
	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.dead
		c.mu.Unlock()
		return wire.Response{}, err
	}
	if !resp.OK {
		return resp, codeError(resp)
	}
	return resp, nil
}

// codeError maps a refused response to the sentinel vocabulary.
func codeError(resp wire.Response) error {
	var base error
	switch resp.Code {
	case wire.CodeAborted:
		base = ErrAborted
	case wire.CodeAbandoned:
		base = ErrAbandoned
	case wire.CodeExpired:
		base = ErrLeaseExpired
	case wire.CodeClosed:
		base = ErrClosed
	case wire.CodeDone:
		base = ErrSessionDone
	case wire.CodeMismatch:
		base = ErrStepMismatch
	default:
		base = ErrProtocol
	}
	return fmt.Errorf("%w: %s", base, resp.Err)
}

// Session is one declared transaction open on the server. Not safe for
// concurrent use.
type Session struct {
	c   *Client
	sid uint64
	tx  model.Txn
	pos int
}

// Open declares a transaction on the server and returns its session.
func (c *Client) Open(tx model.Txn) (*Session, error) {
	resp, err := c.roundTrip(wire.Request{
		Op:   wire.OpOpen,
		Name: tx.Name,
		Txn:  wire.EncodeSteps(tx.Steps),
	})
	if err != nil {
		return nil, err
	}
	return &Session{c: c, sid: resp.SID, tx: tx.Clone()}, nil
}

// Declared returns the session's declared transaction.
func (s *Session) Declared() model.Txn { return s.tx }

// Step submits the next declared step. On ErrAborted the attempt was
// erased server-side; the session survives and the cursor resets to the
// first declared step.
func (s *Session) Step(st model.Step) error {
	_, err := s.c.roundTrip(wire.Request{Op: wire.OpStep, SID: s.sid, Step: st.String()})
	if err == nil {
		s.pos++
		return nil
	}
	if errors.Is(err, ErrAborted) {
		s.pos = 0
	}
	return err
}

// Commit finalizes the session after all declared steps were admitted.
func (s *Session) Commit() error {
	_, err := s.c.roundTrip(wire.Request{Op: wire.OpCommit, SID: s.sid})
	if err != nil && errors.Is(err, ErrAborted) {
		s.pos = 0
	}
	return err
}

// Abort closes the session, erasing its attempt and releasing its
// locks.
func (s *Session) Abort() error {
	_, err := s.c.roundTrip(wire.Request{Op: wire.OpAbort, SID: s.sid})
	return err
}

// Run drives the declared transaction to commit: it submits every
// declared step and commits, retrying from the first step with linear
// backoff whenever the server reports ErrAborted — the network
// counterpart of the batch runtime's abort/retry loop. backoff is the
// base delay (the k-th retry waits k*backoff; 0 means none).
func (s *Session) Run(backoff time.Duration) error {
	attempt := 0
	for {
		err := s.runOnce()
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
		attempt++
		if d := time.Duration(attempt) * backoff; d > 0 {
			time.Sleep(d)
		}
	}
}

func (s *Session) runOnce() error {
	for s.pos < s.tx.Len() {
		if err := s.Step(s.tx.Steps[s.pos]); err != nil {
			return err
		}
	}
	return s.Commit()
}

// Stats polls the server's metrics snapshot.
func (c *Client) Stats() (wire.Stats, error) {
	resp, err := c.roundTrip(wire.Request{Op: wire.OpStats})
	if err != nil {
		return wire.Stats{}, err
	}
	if resp.Stats == nil {
		return wire.Stats{}, fmt.Errorf("%w: stats response without payload", ErrProtocol)
	}
	return *resp.Stats, nil
}

// Inspect fetches the server's diagnostic world-state snapshot (the
// surviving log, structural state, monitor key and serializability
// verdict). Heavyweight server-side; meant for tests, debugging and
// final verification, not routine polling.
func (c *Client) Inspect() (wire.Inspect, error) {
	resp, err := c.roundTrip(wire.Request{Op: wire.OpInspect})
	if err != nil {
		return wire.Inspect{}, err
	}
	if resp.Inspect == nil {
		return wire.Inspect{}, fmt.Errorf("%w: inspect response without payload", ErrProtocol)
	}
	return *resp.Inspect, nil
}
