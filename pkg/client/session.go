package client

import (
	"errors"
	"fmt"
	"time"

	"locksafe/internal/model"
	"locksafe/internal/wire"
)

// maxInflight bounds a session's unreconciled pipelined requests, kept
// below the server's per-session queue depth so a burst never stalls
// the connection's reader on a full session queue.
const maxInflight = 96

// Session is one declared transaction open on the server. Not safe for
// concurrent use: the async methods pipeline requests within the
// session, but submission and reconciliation belong to one goroutine.
type Session struct {
	c   *Client
	sid uint64
	// token is the resume token the open response carried (protocol
	// version 4; zero under earlier versions): the credential a later
	// Resume presents to reattach this session after a lost connection.
	token uint64
	tx    model.Txn

	// Compact encoding state (binary codec only): the entity table as
	// declared to the server at open, the declared body in compact form,
	// and the entity→index map for sync Step lookups. Step requests ship
	// (opByte, entityIndex) against this table; the server resolves
	// indices against its own copy, so both orders must be the declared
	// one — they are, both sides keep the open request's table verbatim.
	table  []model.Entity
	csteps []model.CompactStep
	index  map[model.Entity]uint32

	pos  int // declared steps confirmed admitted in the current attempt
	sent int // declared steps submitted (>= pos while pipelining)
	// attempt tags outgoing step/commit requests; it is bumped in
	// lockstep with the server's counter (each side bumps when it
	// observes a real abort of the current attempt), so responses for a
	// torn-down attempt reconcile as stale instead of corrupting the
	// retry's cursor.
	attempt  int
	inflight []inflightOp
}

// inflightOp is one submitted-but-unreconciled pipelined request.
type inflightOp struct {
	id      uint64
	ch      chan wire.Response
	attempt int
	commit  bool
}

// Open declares a transaction on the server and returns its session.
func (c *Client) Open(tx model.Txn) (*Session, error) {
	s := &Session{c: c, tx: tx.Clone()}
	req := wire.Request{Op: wire.OpOpen, Name: tx.Name}
	if c.binary() {
		s.table, s.csteps = model.CompactTxn(s.tx.Steps)
		req.Table, req.CSteps = s.table, s.csteps
		s.index = make(map[model.Entity]uint32, len(s.table))
		for i, e := range s.table {
			s.index[e] = uint32(i)
		}
	} else {
		req.Txn = wire.EncodeSteps(tx.Steps)
	}
	resp, err := c.roundTrip(req)
	if err != nil {
		return nil, err
	}
	s.sid = resp.SID
	s.token = resp.Token
	return s, nil
}

// Resume reattaches a session parked server-side — typically by a lost
// connection (the server parks a version 4 connection's sessions
// instead of aborting them) — on this client's connection. prev is the
// parked session's handle, usually from a now-dead Client: its sid,
// resume token and declared body identify and re-arm the session. The
// returned session is fresh, positioned at the first declared step with
// a reset attempt counter; drive it exactly like a newly opened one.
// Refusals: wrong token, unknown sid or a session that is not parked
// wrap ErrProtocol (the request was unusable, nothing was touched); a
// session that is gone — finished, or its lease expired — wraps
// ErrAborted, and reopening is the only way forward.
func (c *Client) Resume(prev *Session) (*Session, error) {
	if c.version < wire.Version {
		return nil, fmt.Errorf("%w: resume requires protocol version %d", ErrProtocol, wire.Version)
	}
	s := &Session{c: c, sid: prev.sid, token: prev.token, tx: prev.tx.Clone()}
	req := wire.Request{Op: wire.OpResume, Name: s.tx.Name, SID: s.sid, Token: s.token}
	s.table, s.csteps = model.CompactTxn(s.tx.Steps)
	req.Table, req.CSteps = s.table, s.csteps
	s.index = make(map[model.Entity]uint32, len(s.table))
	for i, e := range s.table {
		s.index[e] = uint32(i)
	}
	resp, err := c.roundTrip(req)
	if err != nil {
		return nil, err
	}
	s.sid = resp.SID
	s.token = resp.Token
	s.attempt = resp.Attempt
	return s, nil
}

// Declared returns the session's declared transaction.
func (s *Session) Declared() model.Txn { return s.tx }

// SID returns the server-assigned session id: under protocol version 4
// an engine-wide id that survives the connection (the handle Resume
// presents), under earlier versions a per-connection counter.
func (s *Session) SID() uint64 { return s.sid }

// Token returns the resume token issued at open (protocol version 4;
// zero under earlier versions).
func (s *Session) Token() uint64 { return s.token }

// Step submits the next declared step and waits for its admission. On
// ErrAborted the attempt was erased server-side; the session survives
// and the cursor resets to the first declared step. Not usable while
// async submissions are unreconciled — Flush first.
func (s *Session) Step(st model.Step) error {
	if len(s.inflight) > 0 {
		return fmt.Errorf("%w: sync Step with pipelined requests in flight; Flush first", ErrProtocol)
	}
	req := wire.Request{Op: wire.OpStep, SID: s.sid, Attempt: s.attempt}
	if s.c.binary() {
		idx, ok := s.index[st.Ent]
		if !ok {
			// The binary codec can only name declared entities; a step
			// outside the table cannot be the declared next step, so this
			// is the same refusal the server would answer with — and like
			// the server's, it leaves the session untouched.
			return fmt.Errorf("%w: step %s names an entity outside the declared body", ErrStepMismatch, st)
		}
		req.CStep, req.HasCompact = model.CompactStep{Op: st.Op, Idx: idx}, true
	} else {
		req.Step = st.String()
	}
	_, err := s.c.roundTrip(req)
	if err == nil {
		s.pos++
		s.sent = s.pos
		return nil
	}
	if errors.Is(err, ErrAborted) {
		s.abortReset()
	}
	return err
}

// Commit finalizes the session after all declared steps were admitted.
func (s *Session) Commit() error {
	if len(s.inflight) > 0 {
		return fmt.Errorf("%w: sync Commit with pipelined requests in flight; Flush first", ErrProtocol)
	}
	_, err := s.c.roundTrip(wire.Request{Op: wire.OpCommit, SID: s.sid, Attempt: s.attempt})
	if err != nil && errors.Is(err, ErrAborted) {
		s.abortReset()
	}
	return err
}

// Abort closes the session, erasing its attempt and releasing its
// locks. Pipelined requests still in flight are drained first (their
// outcomes discarded) so the abort is not reordered before them.
func (s *Session) Abort() error {
	for len(s.inflight) > 0 {
		s.reconcileOne()
	}
	_, err := s.c.roundTrip(wire.Request{Op: wire.OpAbort, SID: s.sid})
	return err
}

// abortReset adopts a server-side abort: bump the attempt tag (the
// server bumped its counter when it reported the abort) and rewind the
// cursor to the first declared step.
func (s *Session) abortReset() {
	s.attempt++
	s.pos, s.sent = 0, 0
}

// StepAsync submits the next unsubmitted declared step without waiting
// for its response. When the in-flight window is full it reconciles
// oldest responses first, so an error return may be a reconciliation
// outcome (ErrAborted rewinds the cursor; submitted-but-unreconciled
// requests become stale and are drained by Flush or later reconciles).
func (s *Session) StepAsync() error {
	if s.sent >= s.tx.Len() {
		return fmt.Errorf("%w: all %d declared steps already submitted", ErrProtocol, s.tx.Len())
	}
	for len(s.inflight) >= maxInflight {
		if err := s.reconcileOne(); err != nil {
			return err
		}
	}
	req := wire.Request{Op: wire.OpStep, SID: s.sid, Attempt: s.attempt}
	if s.c.binary() {
		req.CStep, req.HasCompact = s.csteps[s.sent], true
	} else {
		req.Step = s.tx.Steps[s.sent].String()
	}
	id, ch, err := s.c.send(req)
	if err != nil {
		return err
	}
	s.inflight = append(s.inflight, inflightOp{id: id, ch: ch, attempt: s.attempt})
	s.sent++
	return nil
}

// CommitAsync submits the commit without waiting; Flush observes its
// outcome.
func (s *Session) CommitAsync() error {
	id, ch, err := s.c.send(wire.Request{Op: wire.OpCommit, SID: s.sid, Attempt: s.attempt})
	if err != nil {
		return err
	}
	s.inflight = append(s.inflight, inflightOp{id: id, ch: ch, attempt: s.attempt, commit: true})
	return nil
}

// Flush reconciles every in-flight request and returns the first real
// failure (stale responses of a torn-down attempt reconcile silently).
// After a nil Flush that included CommitAsync, the transaction is
// committed.
func (s *Session) Flush() error {
	var first error
	for len(s.inflight) > 0 {
		if err := s.reconcileOne(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// reconcileOne consumes the oldest in-flight response. Responses tagged
// with a previous attempt are stale — the server refused them without
// executing — and reconcile to nil. A real abort of the current attempt
// bumps the tag, rewinds the cursor and returns ErrAborted (everything
// still in flight just became stale).
func (s *Session) reconcileOne() error {
	op := s.inflight[0]
	s.inflight = s.inflight[1:]
	resp, ok := <-op.ch
	if !ok {
		return s.c.deadErr()
	}
	s.c.recycle(op.ch)
	if op.attempt != s.attempt {
		return nil // stale: late response of a torn-down attempt
	}
	if resp.OK {
		if !op.commit {
			s.pos++
		}
		return nil
	}
	err := codeError(resp)
	if errors.Is(err, ErrAborted) {
		s.abortReset()
	}
	return err
}

// Run drives the declared transaction to commit with synchronous
// per-step round trips, retrying on ErrAborted with the default capped,
// jittered backoff over the given base delay (0 means none). The
// simplest loop; RunWith exposes the full backoff knobs and
// RunPipelined the pipelined variant.
func (s *Session) Run(backoff time.Duration) error {
	return s.RunWith(Backoff{Base: backoff})
}

// RunWith is Run with explicit backoff configuration.
func (s *Session) RunWith(b Backoff) error {
	for k := 1; ; k++ {
		err := s.runOnce()
		if err == nil || !errors.Is(err, ErrAborted) {
			return err
		}
		if d := b.delay(k); d > 0 {
			time.Sleep(d)
		}
	}
}

func (s *Session) runOnce() error {
	for s.pos < s.tx.Len() {
		if err := s.Step(s.tx.Steps[s.pos]); err != nil {
			return err
		}
	}
	return s.Commit()
}

// RunPipelined drives the declared transaction to commit by pipelining:
// each attempt submits every declared step and the commit without
// waiting, then reconciles, so an attempt costs ~one round trip. On
// ErrAborted it drains the torn-down attempt's stale responses and
// retries with the given backoff.
func (s *Session) RunPipelined(b Backoff) error {
	for k := 1; ; k++ {
		err := s.runPipelinedOnce()
		if err == nil || !errors.Is(err, ErrAborted) {
			return err
		}
		if d := b.delay(k); d > 0 {
			time.Sleep(d)
		}
	}
}

// runPipelinedOnce submits one full pipelined attempt and reconciles
// it. Any error return leaves no unreconciled in-flight requests.
func (s *Session) runPipelinedOnce() error {
	for s.sent < s.tx.Len() {
		if err := s.StepAsync(); err != nil {
			if ferr := s.Flush(); ferr != nil && errors.Is(err, ErrAborted) && !errors.Is(ferr, ErrAborted) {
				// The windowed reconcile saw the abort; a later response
				// carried a terminal error — report that instead.
				return ferr
			}
			return err
		}
	}
	if err := s.CommitAsync(); err != nil {
		s.Flush()
		return err
	}
	return s.Flush()
}
