package client_test

import (
	"fmt"
	"net"
	"time"

	"locksafe/internal/model"
	"locksafe/internal/policy"
	"locksafe/internal/runtime"
	"locksafe/internal/server"
	"locksafe/pkg/client"
)

// ExampleClient runs one declared transaction against an in-memory
// lockd on loopback: dial (version handshake included), declare the
// body at Open, drive it with Session.Run — which submits every
// declared step and commits, retrying from the first step if the
// server aborts the attempt — and read the server's metrics. Shutdown
// drains the server and verifies the committed schedule serializable.
func ExampleClient() {
	srv := server.New(model.NewState("a", "b"), runtime.Config{Policy: policy.TwoPhase{}})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println("listen failed:", err)
		return
	}
	go srv.Serve(ln)

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		fmt.Println("dial failed:", err)
		return
	}
	defer c.Close()
	fmt.Println("policy:", c.Policy())

	tx := model.NewTxn("T1",
		model.LX("a"), model.W("a"), model.LX("b"), model.R("b"),
		model.UX("a"), model.UX("b"))
	s, err := c.Open(tx)
	if err != nil {
		fmt.Println("open failed:", err)
		return
	}
	if err := s.Run(time.Millisecond); err != nil {
		fmt.Println("run failed:", err)
		return
	}
	st, err := c.Stats()
	if err != nil {
		fmt.Println("stats failed:", err)
		return
	}
	fmt.Println("commits:", st.Commits, "events:", st.Events)

	res, err := srv.Shutdown(time.Second)
	if err != nil {
		fmt.Println("drain failed:", err)
		return
	}
	fmt.Println("drained clean, commits:", res.Metrics.Commits)
	// Output:
	// policy: 2PL
	// commits: 1 events: 6
	// drained clean, commits: 1
}
