package client_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"locksafe/internal/chaos"
	"locksafe/internal/model"
	"locksafe/internal/policy"
	"locksafe/internal/runtime"
	"locksafe/internal/server"
	"locksafe/pkg/client"
)

// startServer boots an in-memory lockd for the test and returns its
// address and a drain func.
func startServer(t *testing.T, universe ...model.Entity) (addr string, shutdown func()) {
	t.Helper()
	srv := server.New(model.NewState(universe...), runtime.Config{
		Policy:     policy.TwoPhase{},
		Shards:     4,
		Backoff:    50 * time.Microsecond,
		MaxRetries: 500,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), func() {
		if _, err := srv.Shutdown(10 * time.Second); err != nil {
			t.Errorf("server drain: %v", err)
		}
	}
}

// TestRunConnLostMidBody is the ErrConnLost regression: a connection
// killed while Run is in flight must surface ErrConnLost — the outcome
// is unknown — and not ErrClosed, which would mislabel the death as a
// server refusal (refusals prove the request did not take effect; a
// cut wire proves nothing).
func TestRunConnLostMidBody(t *testing.T) {
	addr, shutdown := startServer(t, "a")
	defer shutdown()

	// A direct (unproxied) client holds the lock so the proxied Run is
	// guaranteed to be parked server-side when the wire is cut.
	holder, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial holder: %v", err)
	}
	defer holder.Close()
	hs, err := holder.Open(model.Txn{Name: "H", Steps: []model.Step{model.LX("a"), model.W("a"), model.UX("a")}})
	if err != nil {
		t.Fatalf("open holder: %v", err)
	}
	if err := hs.Step(model.LX("a")); err != nil {
		t.Fatalf("holder lock: %v", err)
	}

	p, err := chaos.NewProxy(addr, nil)
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()
	c, err := client.Dial(p.Addr())
	if err != nil {
		t.Fatalf("dial via proxy: %v", err)
	}
	defer c.Close()

	done := make(chan error, 1)
	go func() {
		done <- c.Run(model.Txn{Name: "V", Steps: []model.Step{model.LX("a"), model.W("a"), model.UX("a")}})
	}()
	select {
	case err := <-done:
		t.Fatalf("Run finished while the lock was held: %v", err)
	case <-time.After(50 * time.Millisecond):
		// Parked on the lock; now cut the wire mid-Run.
	}
	if n := p.KillAll(); n != 1 {
		t.Fatalf("KillAll cut %d connections, want 1", n)
	}
	select {
	case err := <-done:
		if !errors.Is(err, client.ErrConnLost) {
			t.Fatalf("Run after kill = %v, want ErrConnLost", err)
		}
		if errors.Is(err, client.ErrClosed) {
			t.Fatalf("Run after kill wraps ErrClosed too: %v — the sentinels must stay distinct", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run never returned after its connection was killed")
	}
	// The client is dead for good: later requests fail fast, same
	// sentinel.
	if err := c.Run(model.Txn{Name: "V2", Steps: []model.Step{model.LX("a"), model.UX("a")}}); !errors.Is(err, client.ErrConnLost) {
		t.Fatalf("Run on dead client = %v, want ErrConnLost", err)
	}
	if _, err := c.Stats(); !errors.Is(err, client.ErrConnLost) {
		t.Fatalf("Stats on dead client = %v, want ErrConnLost", err)
	}

	// Release the lock so the drain is clean.
	if err := hs.Abort(); err != nil {
		t.Fatalf("holder abort: %v", err)
	}
}

// TestCloseIsNotConnLost pins the other side of the distinction: a
// deliberate Client.Close yields ErrClosed (a known-safe local
// shutdown), never ErrConnLost.
func TestCloseIsNotConnLost(t *testing.T) {
	addr, shutdown := startServer(t, "a")
	defer shutdown()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c.Close()
	err = c.Run(model.Txn{Name: "T", Steps: []model.Step{model.LX("a"), model.UX("a")}})
	if !errors.Is(err, client.ErrClosed) {
		t.Fatalf("Run after Close = %v, want ErrClosed", err)
	}
	if errors.Is(err, client.ErrConnLost) {
		t.Fatalf("Run after Close wraps ErrConnLost: %v", err)
	}
}
