// Package locksafe reproduces "Safe Locking Policies for Dynamic
// Databases" (Chaudhri & Hadzilacos, PODS 1995 / JCSS 1998): a formal
// model of dynamic-database schedules, a safety decision procedure built
// on the paper's canonical-schedules theorem (Theorem 1), runtime
// implementations of the DDAG, altruistic and dynamic-tree locking
// policies, and an evaluation harness regenerating every figure and
// theorem of the paper — grown into a concurrent locking system with a
// sharded lock manager, a goroutine transaction runtime with an
// open-ended session API, a shared checkpointed-recovery core, and a
// network lock service (lockd) serving the runtime over TCP.
//
// # Architecture
//
// The system is layered; each layer depends only on the ones above it.
//
// Foundation — the paper's formal model:
//
//	internal/model       — entities, steps, transactions, schedules,
//	                       properness, legality, serializability graph
//	                       D(S), and the Monitor protocol (§2)
//	internal/graph       — rooted DAGs, dominators, forests: the
//	                       substrate of the DDAG and DTR policies (§4, §6)
//
// Policies and safety — which schedules a policy admits, and whether
// everything it admits is serializable:
//
//	internal/policy      — 2PL, tree [SK80], DDAG (§4), DDAG-SX,
//	                       altruistic [SGMS94] (§5), DTR [CM86] (§6) as
//	                       runtime monitors with speculative Check and
//	                       declared rule footprints
//	internal/checker     — Brute and Canonical safety deciders (§3,
//	                       Theorem 1)
//
// Locking substrate — one implementation of the locking rules, two
// execution disciplines over it:
//
//	internal/locktable   — single-owner lock-table core: S/X
//	                       compatibility, FIFO queues, upgrades,
//	                       waits-for deadlock detection, composable
//	                       wait edges
//	internal/lockmgr     — concurrent lock manager: entity-hashed shards
//	                       over the core, channel-parked waiters,
//	                       cross-shard deadlock sweeps
//
// Execution — two substrates running locked transaction systems under a
// policy monitor, sharing one recovery discipline:
//
//	internal/recovery    — checkpointed-recovery core: the event log,
//	                       periodic monitor/state snapshots on a doubling
//	                       schedule, and victim compaction by suffix
//	                       replay
//	internal/engine      — deterministic virtual-time simulator over the
//	                       lock-table core
//	internal/runtime     — real-goroutine runtime over the sharded
//	                       manager: footprint-striped monitor gate with a
//	                       sequenced log, abort/retry, cascading aborts,
//	                       wall-clock metrics; batch Run over complete
//	                       workloads plus the long-lived Engine/Session
//	                       API (declared bodies, client-paced steps,
//	                       lease-reaped abandonment)
//
// Service — the runtime exposed as a long-lived network lock service:
//
//	internal/wire        — lockd protocol: length-prefixed JSON frames,
//	                       versioned hello, session ops, diagnostics
//	                       (spec: docs/PROTOCOL.md)
//	internal/server      — lockd server: one reader per connection, one
//	                       on-demand worker per session, pipelined
//	                       requests, lease reaping, graceful drain
//	pkg/client           — Go client: pipelined sessions over one
//	                       connection, abort/retry loop, stats/inspect
//
// Evaluation — workloads and the experiment suite:
//
//	internal/workload    — generators (uniform or Zipf hot-key skewed),
//	                       per-client network-mode bodies, and the
//	                       paper's worked examples (Figures 1–5)
//	internal/experiments — the E1–E16 evaluation suite
//
// Executables: cmd/locksafe (safety decider), cmd/figures (figure
// walkthroughs), cmd/lockbench (quantitative tables; -net drives a
// running lockd), cmd/lockd (the network lock service; operator's
// manual in docs/OPERATIONS.md). Runnable examples are under examples/,
// and godoc Example functions cover the lockmgr, runtime (batch and
// session) and pkg/client entry points.
//
// The benchmarks in bench_test.go regenerate each experiment; see
// EXPERIMENTS.md for recorded results and DESIGN.md for the full system
// inventory and the design notes on the lock table, the sharded manager,
// the monitor protocol, the footprint-striped gate, the unified
// recovery core and the service layer.
package locksafe
