// Package locksafe reproduces "Safe Locking Policies for Dynamic
// Databases" (Chaudhri & Hadzilacos, PODS 1995 / JCSS 1998): a formal
// model of dynamic-database schedules, a safety decision procedure built
// on the paper's canonical-schedules theorem (Theorem 1), runtime
// implementations of the DDAG, altruistic and dynamic-tree locking
// policies, and an evaluation harness regenerating every figure and
// theorem of the paper.
//
// The implementation lives under internal/:
//
//	internal/model       — entities, steps, transactions, schedules,
//	                       properness, legality, serializability (§2)
//	internal/checker     — Brute and Canonical safety deciders (§3)
//	internal/policy      — 2PL, tree, DDAG (§4), altruistic (§5), DTR (§6)
//	internal/graph       — rooted DAGs, dominators, forests
//	internal/locktable   — single-owner lock-table core (FIFO, upgrades,
//	                       waits-for deadlock detection)
//	internal/lockmgr     — concurrent S/X lock manager over the core,
//	                       entity-hash sharded with cross-shard deadlock
//	                       sweeps
//	internal/engine      — deterministic virtual-time execution engine
//	internal/runtime     — goroutine transaction runtime over the sharded
//	                       manager (abort/retry, cascades, wall-clock
//	                       metrics)
//	internal/workload    — generators and the paper's worked examples
//	internal/experiments — the E1–E13 evaluation suite
//
// Executables: cmd/locksafe (safety decider), cmd/figures (figure
// walkthroughs), cmd/lockbench (quantitative tables). Runnable examples
// are under examples/.
//
// The benchmarks in bench_test.go regenerate each experiment; see
// EXPERIMENTS.md for recorded results and DESIGN.md for the full system
// inventory.
package locksafe
