package locksafe_test

// One benchmark per experiment (E1–E13; see DESIGN.md's experiment index
// and EXPERIMENTS.md for recorded results), plus micro-benchmarks of the
// core machinery: replay, serializability-graph construction, the two
// safety deciders, policy monitors, the execution engine, the sharded
// lock manager and the goroutine transaction runtime.

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"locksafe/internal/checker"
	"locksafe/internal/engine"
	"locksafe/internal/experiments"
	"locksafe/internal/lockmgr"
	"locksafe/internal/model"
	"locksafe/internal/policy"
	"locksafe/internal/recovery"
	txnruntime "locksafe/internal/runtime"
	"locksafe/internal/workload"
)

func BenchmarkE1CanonicalShapes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.E1CanonicalShapes(); r.Failed != "" {
			b.Fatal(r.Failed)
		}
	}
}

func BenchmarkE2Figure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.E2Figure2(); r.Failed != "" {
			b.Fatal(r.Failed)
		}
	}
}

func BenchmarkE3DDAGWalkthrough(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.E3DDAGWalkthrough(); r.Failed != "" {
			b.Fatal(r.Failed)
		}
	}
}

func BenchmarkE4AltruisticWalkthrough(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.E4AltruisticWalkthrough(); r.Failed != "" {
			b.Fatal(r.Failed)
		}
	}
}

func BenchmarkE5DTRWalkthrough(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.E5DTRWalkthrough(); r.Failed != "" {
			b.Fatal(r.Failed)
		}
	}
}

func BenchmarkE6Differential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.E6Differential(25, int64(i)); r.Failed != "" {
			b.Fatal(r.Failed)
		}
	}
}

func BenchmarkE7PolicySafety(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.E7PolicySafety(4, int64(i)); r.Failed != "" {
			b.Fatal(r.Failed)
		}
	}
}

func BenchmarkE8Performance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, r := experiments.E8Performance(1); r.Failed != "" {
			b.Fatal(r.Failed)
		}
	}
}

func BenchmarkE9Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.E9Scalability(int64(i)); r.Failed != "" {
			b.Fatal(r.Failed)
		}
	}
}

// --- micro-benchmarks ---

func benchSystem() *model.System {
	sys, _ := workload.Random(rand.New(rand.NewSource(11)), workload.DefaultConfig())
	return sys
}

func BenchmarkReplay(b *testing.B) {
	sys, sched := workload.Random(rand.New(rand.NewSource(11)), workload.DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sched.LegalAndProper(sys) {
			b.Fatal("fixture broke")
		}
	}
}

func BenchmarkSerializabilityGraph(b *testing.B) {
	sys, sched := workload.Random(rand.New(rand.NewSource(11)), workload.DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sched.Graph(sys).Acyclic() && sched.Graph(sys).FindCycle() == nil {
			b.Fatal("inconsistent graph")
		}
	}
}

func BenchmarkBruteChecker(b *testing.B) {
	sys := benchSystem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checker.Brute(sys, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCanonicalChecker(b *testing.B) {
	sys := benchSystem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checker.Canonical(sys, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCanonicalFigure2(b *testing.B) {
	sys := workload.Figure2System()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := checker.Canonical(sys, nil)
		if err != nil || res.Safe {
			b.Fatal("Figure 2 must be unsafe")
		}
	}
}

func BenchmarkDDAGMonitor(b *testing.B) {
	sc := workload.Figure3()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon := policy.DDAG{}.NewMonitor(sc.SysGranted)
		for _, ev := range sc.Granted {
			if err := mon.Step(ev); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAltruisticMonitor(b *testing.B) {
	sc := workload.Figure4()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon := policy.Altruistic{}.NewMonitor(sc.Sys)
		for _, ev := range sc.Events {
			if err := mon.Step(ev); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkDTRMonitor(b *testing.B) {
	sc := workload.Figure5()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon := policy.DTR{}.NewMonitor(sc.Sys)
		for _, ev := range sc.Events {
			if err := mon.Step(ev); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkEngineDDAG(b *testing.B) {
	cfg := workload.DefaultDDAGConfig()
	cfg.Txns = 8
	sys, _ := workload.DDAGSystem(rand.New(rand.NewSource(3)), cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(sys, engine.Config{Policy: policy.DDAG{}, MPL: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngine2PLContention(b *testing.B) {
	ents := []model.Entity{"a", "b", "c", "d"}
	var txns []model.Txn
	for i := 0; i < 8; i++ {
		txns = append(txns, model.Txn{Steps: workload.TwoPhaseSteps(ents)})
	}
	sys := model.NewSystem(model.NewState(ents...), txns...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(sys, engine.Config{Policy: policy.TwoPhase{}, MPL: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadGen(b *testing.B) {
	cfg := workload.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		sys, _ := workload.Random(rng, cfg)
		if len(sys.Txns) == 0 {
			b.Fatal("empty system")
		}
	}
}

func BenchmarkE10SharedDDAG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.E10SharedDDAG(5, int64(i)); r.Failed != "" {
			b.Fatal(r.Failed)
		}
	}
}

func BenchmarkDDAGSXCounterexample(b *testing.B) {
	sys := workload.DDAGSXCounterexample()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := checker.Brute(sys, &checker.Options{Monitor: policy.DDAGSX{}.NewMonitor(sys)})
		if err != nil || res.Safe {
			b.Fatal("counterexample must be unsafe")
		}
	}
}

// BenchmarkLockMgrSharded measures lock/unlock pairs against the manager
// from all cores: with one shard every pair serializes on one mutex, so
// the per-shard-count comparison is the sharding refactor's headline
// number (recorded in EXPERIMENTS.md).
func BenchmarkLockMgrSharded(b *testing.B) {
	pool := make([]model.Entity, 256)
	for i := range pool {
		pool[i] = model.Entity(fmt.Sprintf("k%d", i))
	}
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			m := lockmgr.NewSharded(shards)
			var owners atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				owner := int(owners.Add(1))
				i := owner * 37
				for pb.Next() {
					e := pool[i%len(pool)]
					i++
					// Single-entity holds cannot deadlock; conflicts just
					// queue and drain FIFO.
					if err := m.Lock(owner, e, model.Exclusive); err == nil {
						_ = m.Unlock(owner, e)
					}
				}
			})
		})
	}
}

// BenchmarkRuntime2PLContention is the concurrent counterpart of
// BenchmarkEngine2PLContention: the same workload shape executed by real
// goroutines against the sharded manager.
func BenchmarkRuntime2PLContention(b *testing.B) {
	ents := []model.Entity{"a", "b", "c", "d"}
	var txns []model.Txn
	for i := 0; i < 8; i++ {
		txns = append(txns, model.Txn{Steps: workload.TwoPhaseSteps(ents)})
	}
	sys := model.NewSystem(model.NewState(ents...), txns...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := txnruntime.Run(sys, txnruntime.Config{
			Policy: policy.TwoPhase{}, Shards: 4, Backoff: 20 * time.Microsecond, MaxRetries: 500,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeDTRChain runs the DTR crabbing pipeline on the
// goroutine runtime.
func BenchmarkRuntimeDTRChain(b *testing.B) {
	ents := []model.Entity{"e0", "e1", "e2", "e3", "e4", "e5"}
	var txns []model.Txn
	for i := 0; i < 8; i++ {
		txns = append(txns, model.Txn{Steps: workload.DTRChainSteps(ents)})
	}
	sys := model.NewSystem(model.NewState(ents...), txns...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := txnruntime.Run(sys, txnruntime.Config{
			Policy: policy.DTR{}, Shards: 4, Backoff: 20 * time.Microsecond, MaxRetries: 500,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE13Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, r := experiments.E13Scaling(1, []int{1, 8}, []int{4}); r.Failed != "" {
			b.Fatal(r.Failed)
		}
	}
}

func BenchmarkE14Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, r := experiments.E14Recovery(1, []int{600, 1200}); r.Failed != "" {
			b.Fatal(r.Failed)
		}
	}
}

// BenchmarkRecoveryCompact measures one abort's recovery on a ~4096-event
// log shaped like a real run — a bounded set of long transactions, the
// victim's events near the tail: checkpointed suffix replay vs the naive
// full replay the runtime used before the shared recovery core. The
// per-op gap is the headline number of the recovery refactor (recorded
// in EXPERIMENTS.md); it grows with log length.
func BenchmarkRecoveryCompact(b *testing.B) {
	const txnCount, rounds = 16, 85 // 16 × 85 × 3 ≈ 4080 events
	ents := make([]model.Entity, txnCount)
	events := make(model.Schedule, 0, txnCount*rounds*3)
	for t := 0; t < txnCount; t++ {
		e := model.Entity(fmt.Sprintf("r%d", t))
		ents[t] = e
		for r := 0; r < rounds; r++ {
			events = append(events,
				model.Ev{T: model.TID(t), S: model.LX(e)},
				model.Ev{T: model.TID(t), S: model.W(e)},
				model.Ev{T: model.TID(t), S: model.UX(e)})
		}
	}
	init := model.NewState(ents...)
	for _, mode := range []struct {
		name string
		full bool
	}{{"checkpointed", false}, {"full-replay", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := recovery.New(txnCount, init, model.PermissiveMonitor{}, 0)
				c.SetFullReplay(mode.full)
				for _, ev := range events {
					if err := c.Append(ev); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				// The victim is the last transaction: its events occupy the
				// log tail, the common case for a freshly aborted attempt.
				if ok, _ := c.Compact(map[int]bool{txnCount - 1: true}); !ok {
					b.Fatal("compact cascaded")
				}
			}
		})
	}
}

// BenchmarkRuntimeAbortHeavy runs the E14 churn workload (transactions
// that abort every attempt, forcing recovery) through the goroutine
// runtime in both recovery modes.
func BenchmarkRuntimeAbortHeavy(b *testing.B) {
	sys := experiments.AbortHeavySystem(1, 8)
	for _, mode := range []struct {
		name string
		full bool
	}{{"checkpointed", false}, {"full-replay", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := txnruntime.Run(sys, txnruntime.Config{
					Policy: policy.TwoPhase{}, Shards: 4, Backoff: 5 * time.Microsecond,
					MaxRetries: 40, FullReplayRecovery: mode.full,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// gateBenchSystem is the E15 disjoint shape: every transaction two-phase
// walks its own private entities, so all admissions are
// footprint-disjoint and the gate is the only shared resource — the
// striping refactor's headline configuration (recorded in
// EXPERIMENTS.md).
func gateBenchSystem() *model.System {
	const txns, perTxn = 8, 16
	var ts []model.Txn
	var all []model.Entity
	for i := 0; i < txns; i++ {
		var own []model.Entity
		for j := 0; j < perTxn; j++ {
			own = append(own, model.Entity(fmt.Sprintf("g%d_%d", i, j)))
		}
		all = append(all, own...)
		ts = append(ts, model.Txn{Steps: workload.TwoPhaseSteps(own)})
	}
	return model.NewSystem(model.NewState(all...), ts...)
}

func benchGate(b *testing.B, cfg txnruntime.Config) {
	sys := gateBenchSystem()
	cfg.Policy = policy.TwoPhase{}
	cfg.Shards = 16
	cfg.Backoff = 20 * time.Microsecond
	cfg.MaxRetries = 500
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := txnruntime.Run(sys, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics.Commits != len(sys.Txns) {
			b.Fatalf("only %d commits", res.Metrics.Commits)
		}
	}
}

// BenchmarkGateStriped measures the footprint-striped admission pipeline
// on the disjoint workload; BenchmarkGateSerialized is the same workload
// through the legacy single-mutex monitor gate. Their ratio is the gate
// refactor's headline number.
func BenchmarkGateStriped(b *testing.B) {
	for _, stripes := range []int{4, 16} {
		b.Run(fmt.Sprintf("stripes=%d", stripes), func(b *testing.B) {
			benchGate(b, txnruntime.Config{GateStripes: stripes})
		})
	}
}

func BenchmarkGateSerialized(b *testing.B) {
	benchGate(b, txnruntime.Config{SerializedGate: true})
}

func BenchmarkE15GateScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, r := experiments.E15GateScaling(1, []int{8}, []int{8}); r.Failed != "" {
			b.Fatal(r.Failed)
		}
	}
}

func BenchmarkE11Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, r := experiments.E11Ablation(3); r.Failed != "" {
			b.Fatal(r.Failed)
		}
	}
}

func BenchmarkE12SharedReaders(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.E12SharedReaders(1); r.Failed != "" {
			b.Fatal(r.Failed)
		}
	}
}

// BenchmarkE16NetThroughput runs a small lockd end-to-end cell set
// (in-memory loopback server, real TCP and wire framing) so the network
// stack stays exercised by the bench-smoke job.
func BenchmarkE16NetThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, r := experiments.E16NetThroughput(1, []int{8}, []int{4}, nil, nil, ""); r.Failed != "" {
			b.Fatal(r.Failed)
		}
	}
}

// BenchmarkE17PartitionScaling runs a small partitioned-engine cell set
// (both body mixes, one and two partitions) so the partition routing,
// cross-partition drain and tag-merged verification stay exercised by
// the bench-smoke job.
func BenchmarkE17PartitionScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, r := experiments.E17PartitionScaling(1, []int{1, 2}, []int{4}, nil); r.Failed != "" {
			b.Fatal(r.Failed)
		}
	}
}
