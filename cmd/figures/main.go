// Command figures regenerates the paper's Figures 1–5 as textual
// walkthroughs: the canonical serializability-graph shapes (Fig. 1), the
// proper nonserializable three-transaction schedule (Fig. 2), and the
// DDAG, altruistic and DTR policy walkthroughs (Figs. 3–5).
//
// Usage:
//
//	figures [fig1|fig2|fig3|fig4|fig5]...
//
// With no arguments all five are printed. The exit status is nonzero if
// any walkthrough's assertions fail.
package main

import (
	"fmt"
	"os"

	"locksafe/internal/experiments"
)

func main() {
	runs := map[string]func() experiments.Report{
		"fig1": experiments.E1CanonicalShapes,
		"fig2": experiments.E2Figure2,
		"fig3": experiments.E3DDAGWalkthrough,
		"fig4": experiments.E4AltruisticWalkthrough,
		"fig5": experiments.E5DTRWalkthrough,
	}
	order := []string{"fig1", "fig2", "fig3", "fig4", "fig5"}

	want := os.Args[1:]
	if len(want) == 0 {
		want = order
	}
	exit := 0
	for _, name := range want {
		f, ok := runs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown figure %q (want fig1..fig5)\n", name)
			os.Exit(2)
		}
		r := f()
		fmt.Println(r.String())
		if r.Failed != "" {
			exit = 1
		}
	}
	os.Exit(exit)
}
