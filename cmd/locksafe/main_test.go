package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

const unsafeInput = `init: a b
T1: (LX a) (W a) (UX a) (LX b) (W b) (UX b)
T2: (LX a) (W a) (UX a) (LX b) (W b) (UX b)
`

const safeInput = `init: a b
T1: (LX a) (LX b) (W a) (W b) (UX a) (UX b)
T2: (LX a) (LX b) (W a) (W b) (UX a) (UX b)
`

func TestUnsafeSystem(t *testing.T) {
	code, out, _ := runCLI(t, nil, unsafeInput)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	for _, want := range []string{"UNSAFE", "Tc = T1", "A* = b", "cycle:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSafeSystem(t *testing.T) {
	code, out, _ := runCLI(t, nil, safeInput)
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !strings.Contains(out, "SAFE") {
		t.Errorf("output missing SAFE:\n%s", out)
	}
}

func TestBothDecidersAgreeFlag(t *testing.T) {
	code, out, _ := runCLI(t, []string{"-decider", "both"}, unsafeInput)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(out, "brute states visited") || !strings.Contains(out, "canonical states visited") {
		t.Errorf("both deciders should report states:\n%s", out)
	}
}

func TestBruteDecider(t *testing.T) {
	code, out, _ := runCLI(t, []string{"-decider", "brute"}, safeInput)
	if code != 0 || !strings.Contains(out, "SAFE") {
		t.Fatalf("exit=%d out=%q", code, out)
	}
}

func TestQuietFlag(t *testing.T) {
	code, out, _ := runCLI(t, []string{"-q"}, unsafeInput)
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
	if strings.TrimSpace(out) != "UNSAFE" {
		t.Errorf("quiet output = %q", out)
	}
}

func TestInputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sys.txt")
	if err := os.WriteFile(path, []byte(safeInput), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCLI(t, []string{path}, "")
	if code != 0 || !strings.Contains(out, "SAFE") {
		t.Fatalf("exit=%d out=%q", code, out)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		args  []string
		stdin string
	}{
		{[]string{"-decider", "nope"}, safeInput},
		{[]string{"a", "b"}, ""},
		{[]string{"/does/not/exist"}, ""},
		{nil, "garbage without colon"},
		{nil, "T1: (W a)"},                          // not well-formed
		{nil, ""},                                   // no transactions
		{[]string{"-max-states", "zzz"}, safeInput}, // bad flag value
	}
	for _, c := range cases {
		code, _, errout := runCLI(t, c.args, c.stdin)
		if code != 2 {
			t.Errorf("args %v stdin %q: exit = %d, want 2 (stderr %q)", c.args, c.stdin, code, errout)
		}
	}
}

func TestMaxStatesBudget(t *testing.T) {
	code, _, errout := runCLI(t, []string{"-max-states", "2"}, unsafeInput)
	if code != 2 || !strings.Contains(errout, "budget") {
		t.Errorf("exit=%d stderr=%q; want budget exhaustion", code, errout)
	}
}
