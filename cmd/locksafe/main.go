// Command locksafe decides the safety of a locked transaction system.
//
// Usage:
//
//	locksafe [-decider canonical|brute|both] [-max-states N] [file]
//
// The input (a file, or stdin when omitted) uses the format:
//
//	# comment
//	init: a b            # entities existing initially (optional)
//	T1: (LX a) (W a) (UX a) (LX b) (W b) (UX b)
//	T2: (LX a) (W a) (UX a)
//
// The exit status is 0 when the system is safe, 1 when it is unsafe, and
// 2 on usage or input errors. For unsafe systems the canonical witness is
// printed: the distinguished transaction Tc, the entity A*, the serial
// partial schedule S', and a complete legal proper nonserializable
// schedule with a cycle of its serializability graph.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"locksafe/internal/checker"
	"locksafe/internal/model"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("locksafe", flag.ContinueOnError)
	fs.SetOutput(stderr)
	decider := fs.String("decider", "canonical", "decider: canonical, brute, or both")
	maxStates := fs.Int("max-states", 0, "state budget (0 = default)")
	quiet := fs.Bool("q", false, "print only SAFE/UNSAFE")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var in io.Reader = stdin
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "locksafe: at most one input file")
		return 2
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "locksafe: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	sys, err := model.ParseSystem(in)
	if err != nil {
		fmt.Fprintf(stderr, "locksafe: %v\n", err)
		return 2
	}
	if err := sys.WellFormed(); err != nil {
		fmt.Fprintf(stderr, "locksafe: %v\n", err)
		return 2
	}

	opts := &checker.Options{MaxStates: *maxStates}
	var results []checker.Result
	var labels []string
	switch *decider {
	case "canonical", "both":
		res, err := checker.Canonical(sys, opts)
		if err != nil {
			fmt.Fprintf(stderr, "locksafe: canonical: %v\n", err)
			return 2
		}
		results = append(results, res)
		labels = append(labels, "canonical")
		if *decider == "both" {
			bres, err := checker.Brute(sys, opts)
			if err != nil {
				fmt.Fprintf(stderr, "locksafe: brute: %v\n", err)
				return 2
			}
			results = append(results, bres)
			labels = append(labels, "brute")
		}
	case "brute":
		res, err := checker.Brute(sys, opts)
		if err != nil {
			fmt.Fprintf(stderr, "locksafe: brute: %v\n", err)
			return 2
		}
		results = append(results, res)
		labels = append(labels, "brute")
	default:
		fmt.Fprintf(stderr, "locksafe: unknown decider %q\n", *decider)
		return 2
	}

	safe := results[0].Safe
	for i, res := range results {
		if res.Safe != safe {
			fmt.Fprintf(stderr, "locksafe: INTERNAL ERROR: %s and %s disagree\n", labels[0], labels[i])
			return 2
		}
	}

	if safe {
		fmt.Fprintln(stdout, "SAFE")
		if !*quiet {
			for i, res := range results {
				fmt.Fprintf(stdout, "# %s states visited: %d\n", labels[i], res.States)
			}
		}
		return 0
	}

	fmt.Fprintln(stdout, "UNSAFE")
	if !*quiet {
		w := results[0].Witness
		if w.FromCanonical {
			fmt.Fprintf(stdout, "# Tc = %s violates two-phase locking and relocks A* = %s\n",
				sys.Name(w.C), w.AStar)
			fmt.Fprintf(stdout, "# serial partial schedule S':\n")
			fmt.Fprint(stdout, prefixLines(w.SerialPrefix.Grid(sys), "#   "))
			fmt.Fprintf(stdout, "# D(S') = %s\n", model.DescribeGraph(sys, w.SerialPrefix.Graph(sys)))
		}
		fmt.Fprintf(stdout, "# nonserializable legal proper schedule:\n")
		fmt.Fprint(stdout, prefixLines(w.Schedule.Grid(sys), "#   "))
		fmt.Fprintf(stdout, "# cycle: %s\n", cycleNames(sys, w.Cycle))
		for i, res := range results {
			fmt.Fprintf(stdout, "# %s states visited: %d\n", labels[i], res.States)
		}
	}
	return 1
}

func prefixLines(s, prefix string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += prefix + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}

func cycleNames(sys *model.System, cycle []model.TID) string {
	if len(cycle) == 0 {
		return "(none)"
	}
	out := ""
	for _, t := range cycle {
		out += sys.Name(t) + " -> "
	}
	return out + sys.Name(cycle[0])
}
