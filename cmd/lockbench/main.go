// Command lockbench runs the quantitative experiment suite and prints the
// tables recorded in EXPERIMENTS.md:
//
//	E6 — differential validation of Theorem 1 (canonical vs brute force)
//	E7 — policy safety on conformant workloads (Theorems 2–4)
//	E8 — throughput/wait/abort vs multiprogramming level ([CHMS94] substitute)
//	E9 — decision-cost scaling of the two deciders
//	E10 — the naive shared/exclusive DDAG extension is unsafe (machine-found)
//	E11 — ablation: early lock release vs hold-to-end on fixed workloads
//	E12 — ablation: shared-mode readers vs exclusive-only readers
//
// Usage:
//
//	lockbench [-seed N] [-systems N] [e6|e7|e8|e9]...
//
// With no experiment arguments the full suite runs. Output is
// deterministic for a fixed seed (timing columns excepted).
package main

import (
	"flag"
	"fmt"
	"os"

	"locksafe/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	systems := flag.Int("systems", 250, "random systems for E6")
	perPolicy := flag.Int("per-policy", 40, "systems per policy for E7")
	flag.Parse()

	runs := map[string]func() experiments.Report{
		"e6":  func() experiments.Report { return experiments.E6Differential(*systems, *seed) },
		"e7":  func() experiments.Report { return experiments.E7PolicySafety(*perPolicy, *seed) },
		"e8":  func() experiments.Report { _, r := experiments.E8Performance(*seed); return r },
		"e9":  func() experiments.Report { return experiments.E9Scalability(*seed) },
		"e10": func() experiments.Report { return experiments.E10SharedDDAG(60, *seed) },
		"e11": func() experiments.Report { _, r := experiments.E11Ablation(*seed); return r },
		"e12": func() experiments.Report { return experiments.E12SharedReaders(*seed) },
	}
	order := []string{"e6", "e7", "e8", "e9", "e10", "e11", "e12"}

	want := flag.Args()
	if len(want) == 0 {
		want = order
	}
	exit := 0
	for _, name := range want {
		f, ok := runs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "lockbench: unknown experiment %q (want e6..e12)\n", name)
			os.Exit(2)
		}
		r := f()
		fmt.Println(r.String())
		if r.Failed != "" {
			exit = 1
		}
	}
	os.Exit(exit)
}
