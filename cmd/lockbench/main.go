// Command lockbench runs the quantitative experiment suite and prints the
// tables recorded in EXPERIMENTS.md:
//
//	E6 — differential validation of Theorem 1 (canonical vs brute force)
//	E7 — policy safety on conformant workloads (Theorems 2–4)
//	E8 — throughput/wait/abort vs multiprogramming level ([CHMS94] substitute)
//	E9 — decision-cost scaling of the two deciders
//	E10 — the naive shared/exclusive DDAG extension is unsafe (machine-found)
//	E11 — ablation: early lock release vs hold-to-end on fixed workloads
//	E12 — ablation: shared-mode readers vs exclusive-only readers
//	E13 — multi-core scaling of the sharded lock manager and the
//	      goroutine transaction runtime
//	E14 — abort-heavy recovery scaling: checkpointed suffix replay vs
//	      naive full replay
//	E15 — gate scaling: footprint-striped vs serialized policy admission
//	      on disjoint and Zipf-skewed workloads
//	E16 — lockd end-to-end: N concurrent pkg/client clients against a
//	      lockd server (in-memory loopback by default; -net targets a
//	      running server — the network mode the CI smoke uses), in each
//	      transport mode of -mode (step, pipeline, run)
//	E17 — partitioned engines: commits/s vs -partitions x -clients on
//	      partition-local-heavy and cross-partition-heavy body mixes
//	E18 — chaos corpus: every -scenario of the workload corpus x policy
//	      x partitions, over TCP through the internal/chaos fault proxy
//	      (kill/delay/stall; -chaos=false for the fault-free control),
//	      asserting the serializability verdict and commit accounting
//	E19 — kill/restart durability: the real lockd binary with -data-dir
//	      and -fsync, SIGKILLed mid-burst and restarted over the same
//	      store; every -scenario x partitions, asserting the crash
//	      accounting bound confirmed <= recovered <= confirmed+unknown
//	      and that at least one pre-kill session resumes and commits
//
// Usage:
//
//	lockbench [-seed N] [-systems N] [-per-policy N] [-shards 1,4,16]
//	          [-goroutines 1,4,8] [-stripes 4,16] [-clients 4,16]
//	          [-partitions 1,2,4,8] [-procs 1,4] [-net HOST:PORT]
//	          [-mode step,pipeline,run] [-codec json,binary]
//	          [-scenario all] [-chaos] [-bench-json DIR]
//	          [-e14-sizes 1000,2000,4000,8000] [e6|e7|...|e19]...
//
// With -bench-json DIR, each measured experiment among E13–E19
// additionally writes DIR/BENCH_<EXP>.json — the machine-readable rows
// plus environment metadata (Go version, cores, GOMAXPROCS, best-of
// policy) for regression diffing across commits; .github/workflows
// ci.yml's bench job diffs them against the committed baselines with
// cmd/benchdiff.
//
// With no experiment arguments the full suite runs. Output is
// deterministic for a fixed seed (timing columns excepted; E13–E17's
// runtime sections measure wall-clock behavior and are inherently
// machine-dependent; E14's core replay counts are deterministic).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"locksafe/internal/experiments"
	"locksafe/internal/workload"
)

// intList parses a comma-separated list of positive ints.
func intList(name, s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("lockbench: -%s wants positive ints, got %q", name, s)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	systems := flag.Int("systems", 250, "random systems for E6")
	perPolicy := flag.Int("per-policy", 40, "systems per policy for E7")
	shards := flag.String("shards", "1,4,16", "shard counts for E13 (comma-separated)")
	goroutines := flag.String("goroutines", "1,4,8", "goroutine counts for E13 (comma-separated)")
	e14Sizes := flag.String("e14-sizes", "1000,2000,4000,8000", "log sizes for E14 (comma-separated event counts)")
	stripes := flag.String("stripes", "4,16", "gate stripe counts for E15 and E16 (comma-separated)")
	clients := flag.String("clients", "4,16", "concurrent client counts for E16 and E17 (comma-separated)")
	partitions := flag.String("partitions", "1,2,4,8", "partition counts for E17 (comma-separated)")
	procs := flag.String("procs", "", "GOMAXPROCS sweep for E17 (comma-separated; empty = the fixed default 1,4)")
	netAddr := flag.String("net", "", "E16 network mode: address of a running lockd (empty = in-memory loopback server per cell)")
	mode := flag.String("mode", "step,pipeline,run", "E16 transport modes to measure (comma-separated: step, pipeline, run)")
	codec := flag.String("codec", "json,binary", "E16 wire codecs to measure (comma-separated: json, binary)")
	scenario := flag.String("scenario", "all", "E18/E19 scenario names from the workload corpus (comma-separated, or \"all\")")
	chaosOn := flag.Bool("chaos", true, "E18: inject kill/delay/stall faults (false = fault-free control through a transparent proxy)")
	benchJSON := flag.String("bench-json", "", "directory to write machine-readable bench artifacts into (E13-E18 write BENCH_<EXP>.json)")
	flag.Parse()

	shardCounts, err := intList("shards", *shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	gorCounts, err := intList("goroutines", *goroutines)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sizeCounts, err := intList("e14-sizes", *e14Sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	stripeCounts, err := intList("stripes", *stripes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	clientCounts, err := intList("clients", *clients)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	partCounts, err := intList("partitions", *partitions)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var procCounts []int // nil = E17's fixed default {1, 4} sweep
	if strings.TrimSpace(*procs) != "" {
		procCounts, err = intList("procs", *procs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	var modes []string
	for _, m := range strings.Split(*mode, ",") {
		m = strings.TrimSpace(m)
		if !experiments.E16ValidMode(m) {
			fmt.Fprintf(os.Stderr, "lockbench: -mode wants a comma-separated subset of step,pipeline,run, got %q\n", *mode)
			os.Exit(2)
		}
		modes = append(modes, m)
	}
	var codecs []string
	for _, c := range strings.Split(*codec, ",") {
		c = strings.TrimSpace(c)
		if !experiments.E16ValidCodec(c) {
			fmt.Fprintf(os.Stderr, "lockbench: -codec wants a comma-separated subset of json,binary, got %q\n", *codec)
			os.Exit(2)
		}
		codecs = append(codecs, c)
	}
	var scenarios []string // nil = the whole corpus
	if s := strings.TrimSpace(*scenario); s != "" && s != "all" {
		for _, name := range strings.Split(s, ",") {
			name = strings.TrimSpace(name)
			if _, ok := workload.ScenarioByName(name); !ok {
				fmt.Fprintf(os.Stderr, "lockbench: -scenario %q is not in the corpus (want a subset of %s, or \"all\")\n",
					name, strings.Join(workload.ScenarioNames(), ","))
				os.Exit(2)
			}
			scenarios = append(scenarios, name)
		}
	}

	// writeBench writes one machine-readable artifact when -bench-json
	// is set; failures are reported but do not fail the run.
	writeBench := func(exp string, bestOf int, rows any) {
		if *benchJSON == "" {
			return
		}
		if path, werr := experiments.WriteBench(*benchJSON, exp, *seed, bestOf, rows); werr != nil {
			fmt.Fprintf(os.Stderr, "lockbench: bench artifact: %v\n", werr)
		} else {
			fmt.Printf("bench artifact: %s\n", path)
		}
	}

	runs := map[string]func() experiments.Report{
		"e6":  func() experiments.Report { return experiments.E6Differential(*systems, *seed) },
		"e7":  func() experiments.Report { return experiments.E7PolicySafety(*perPolicy, *seed) },
		"e8":  func() experiments.Report { _, r := experiments.E8Performance(*seed); return r },
		"e9":  func() experiments.Report { return experiments.E9Scalability(*seed) },
		"e10": func() experiments.Report { return experiments.E10SharedDDAG(60, *seed) },
		"e11": func() experiments.Report { _, r := experiments.E11Ablation(*seed); return r },
		"e12": func() experiments.Report { return experiments.E12SharedReaders(*seed) },
		"e13": func() experiments.Report {
			rows, r := experiments.E13Scaling(*seed, shardCounts, gorCounts)
			writeBench("E13", 1, rows)
			return r
		},
		"e14": func() experiments.Report {
			rows, r := experiments.E14Recovery(*seed, sizeCounts)
			writeBench("E14", 1, rows)
			return r
		},
		"e15": func() experiments.Report {
			rows, r := experiments.E15GateScaling(*seed, stripeCounts, gorCounts)
			writeBench("E15", experiments.E15Reps, rows)
			return r
		},
		"e16": func() experiments.Report {
			rows, r := experiments.E16NetThroughput(*seed, stripeCounts, clientCounts, modes, codecs, *netAddr)
			bestOf := experiments.E16Reps
			if *netAddr != "" {
				bestOf = 1
			}
			writeBench("E16", bestOf, rows)
			return r
		},
		"e17": func() experiments.Report {
			rows, r := experiments.E17PartitionScaling(*seed, partCounts, clientCounts, procCounts)
			writeBench("E17", experiments.E17Reps, rows)
			return r
		},
		"e18": func() experiments.Report {
			// The chaos grid fixes its own partition axis ({1,4}) rather
			// than borrowing -partitions: the cell count is scenarios x
			// policies x partitions and chaos cells are wall-clock heavy.
			rows, r := experiments.E18ChaosCorpus(*seed, scenarios, nil, *chaosOn, workload.ScenarioConfig{})
			writeBench("E18", 1, rows)
			return r
		},
		"e19": func() experiments.Report {
			// Like E18, the durability grid fixes its own partition axis
			// ({1,4}): each cell builds on a real process lifecycle (start,
			// SIGKILL, restart, drain) and is wall-clock heavy.
			rows, r := experiments.E19KillRestart(*seed, scenarios, nil, workload.ScenarioConfig{})
			writeBench("E19", 1, rows)
			return r
		},
	}
	order := []string{"e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17", "e18", "e19"}

	want := flag.Args()
	if len(want) == 0 {
		want = order
	}
	exit := 0
	for _, name := range want {
		f, ok := runs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "lockbench: unknown experiment %q (want e6..e19)\n", name)
			os.Exit(2)
		}
		r := f()
		fmt.Println(r.String())
		if r.Failed != "" {
			exit = 1
		}
	}
	os.Exit(exit)
}
