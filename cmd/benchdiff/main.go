// Command benchdiff compares two machine-readable bench artifacts
// (BENCH_<EXP>.json, written by lockbench -bench-json) and fails when
// the current throughput has regressed beyond a noise band.
//
// Usage:
//
//	benchdiff [-tolerance 0.75] [-alloc-tolerance 0.5] BASELINE.json CURRENT.json
//
// Rows are matched by position — lockbench emits its measurement grid
// deterministically for fixed flags — and the string-valued fields of
// each pair must agree (a mismatch means the grids drifted: different
// flags or a changed experiment, which is an error, not a regression).
// For every rate field present in both rows (commits_per_sec,
// Throughput, OpsPerSec), the relative change is printed; the exit
// status is 1 if any rate fell below (1 - tolerance) of the baseline.
// Allocation fields (allocs_per_op) are lower-is-better and get their
// own band: the row fails when current allocations exceed
// (1 + alloc-tolerance) x baseline. Allocation counts are near-exact
// (runtime malloc counters, not wall-clock), so their band is tighter
// than the throughput one.
//
// The default throughput tolerance is deliberately generous: bench
// numbers come from whatever runner CI hands out (often few-core,
// noisy-neighbor machines) while baselines may have been recorded
// elsewhere, so only a collapse — not jitter — should fail the build.
// Improvements never fail, whatever their size; refresh the baseline to
// tighten the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// rateFields are the throughput-bearing fields diffed when present:
// the JSON-tagged name E16/E17 rows use and the untagged Go field names
// of the older row types.
var rateFields = []string{"commits_per_sec", "Throughput", "OpsPerSec"}

// allocFields are the lower-is-better allocation fields diffed under
// the -alloc-tolerance band. A zero on either side skips the field
// (E16's external network mode records no alloc counts).
var allocFields = []string{"allocs_per_op"}

// artifact mirrors experiments.Bench loosely: rows stay raw maps so one
// tool serves every experiment's row shape.
type artifact struct {
	Experiment string           `json:"experiment"`
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	BestOf     int              `json:"best_of"`
	Rows       []map[string]any `json:"rows"`
}

func load(path string) (artifact, error) {
	var a artifact
	data, err := os.ReadFile(path)
	if err != nil {
		return a, err
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return a, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// keyOf renders a row's identity: every string-valued field plus every
// integer field that is not a rate or obviously measured, sorted by
// name. Config fields (workload, gate, mode, clients, partitions,
// shards, goroutines) are strings and small ints; measured counters
// (commits, aborts) match between compared grids anyway when the flags
// match, so including them would only turn a throughput change into a
// spurious key mismatch — they are excluded by name.
func keyOf(row map[string]any) string {
	measured := map[string]bool{
		"commits_per_sec": true, "Throughput": true, "OpsPerSec": true,
		"allocs_per_op": true,
		"commits":       true, "Commits": true, "aborts": true, "Aborts": true,
		"AvgWaitUs": true, "Replayed": true, "Checkpoints": true, "Events": true,
		// E18 chaos counters: which connections die and which outcomes
		// land unknown depends on fault/TCP timing, so these are measured
		// noise, not grid identity.
		"confirmed": true, "unknown": true, "aborted": true, "killed": true,
		// E19 kill/restart counters: where the SIGKILL lands in the burst
		// moves every commit count, so only scenario/partitions/clients
		// identify a row.
		"recovered_commits": true, "resumed_commits": true,
	}
	keys := make([]string, 0, len(row))
	for k := range row {
		if !measured[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%v ", k, row[k])
	}
	return out
}

func rate(row map[string]any, field string) (float64, bool) {
	v, ok := row[field]
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	return f, ok
}

func main() {
	tolerance := flag.Float64("tolerance", 0.75, "maximum tolerated relative throughput drop (0.75 = fail below 25% of baseline)")
	allocTolerance := flag.Float64("alloc-tolerance", 0.5, "maximum tolerated relative allocation growth (0.5 = fail above 150% of baseline allocs/op)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tolerance F] BASELINE.json CURRENT.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if base.Experiment != cur.Experiment {
		fmt.Fprintf(os.Stderr, "benchdiff: comparing different experiments: %q vs %q\n", base.Experiment, cur.Experiment)
		os.Exit(2)
	}
	if len(base.Rows) != len(cur.Rows) {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: baseline has %d rows, current %d — measurement grids differ (check lockbench flags)\n",
			base.Experiment, len(base.Rows), len(cur.Rows))
		os.Exit(2)
	}
	fmt.Printf("%s: baseline go=%s cpus=%d bestof=%d | current go=%s cpus=%d bestof=%d | tolerance %.0f%%\n",
		base.Experiment, base.GoVersion, base.NumCPU, base.BestOf, cur.GoVersion, cur.NumCPU, cur.BestOf, *tolerance*100)
	regressed := false
	for i := range base.Rows {
		bk, ck := keyOf(base.Rows[i]), keyOf(cur.Rows[i])
		if bk != ck {
			fmt.Fprintf(os.Stderr, "benchdiff: row %d identity mismatch:\n  baseline %s\n  current  %s\n", i, bk, ck)
			os.Exit(2)
		}
		for _, f := range rateFields {
			b, bok := rate(base.Rows[i], f)
			c, cok := rate(cur.Rows[i], f)
			if !bok || !cok || b <= 0 {
				continue
			}
			rel := c / b
			status := "ok"
			if rel < 1-*tolerance {
				status = "REGRESSED"
				regressed = true
			}
			fmt.Printf("  %-60s %-15s %12.0f -> %12.0f  %6.1f%%  %s\n", bk, f, b, c, rel*100, status)
		}
		for _, f := range allocFields {
			b, bok := rate(base.Rows[i], f)
			c, cok := rate(cur.Rows[i], f)
			if !bok || !cok || b <= 0 || c <= 0 {
				continue
			}
			rel := c / b
			status := "ok"
			if rel > 1+*allocTolerance {
				status = "REGRESSED"
				regressed = true
			}
			fmt.Printf("  %-60s %-15s %12.0f -> %12.0f  %6.1f%%  %s\n", bk, f, b, c, rel*100, status)
		}
	}
	if regressed {
		fmt.Fprintln(os.Stderr, "benchdiff: a measurement regressed beyond its tolerance band")
		os.Exit(1)
	}
}
