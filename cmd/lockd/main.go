// Command lockd serves the session runtime over TCP: a long-lived
// network lock service enforcing one of the paper's locking policies
// over the footprint-striped admission gate, with session leases,
// cascade recovery and graceful drain.
//
// Usage:
//
//	lockd [-addr HOST:PORT] [-policy NAME] [-init "a,b,A->B"]
//	      [-partitions N] [-stripes N | -serialized-gate] [-shards N]
//	      [-mpl N] [-checkpoint-every N] [-truncate-log=false]
//	      [-data-dir DIR] [-fsync] [-lease DUR] [-max-retries N]
//	      [-backoff DUR] [-backoff-cap DUR] [-backoff-jitter F]
//	      [-drain-timeout DUR] [-pprof HOST:PORT]
//
// -data-dir makes lockd durable: every partition appends its committed
// schedule, transaction declarations and statuses to a write-ahead log
// (with periodic checkpoint snapshots) under the directory, and a
// restart — clean or crashed — recovers the committed schedule,
// re-verifies its serializability, and restores in-flight sessions
// parked for client resume within their leases. -fsync additionally
// syncs every WAL append, making acknowledged commits survive machine
// (not just process) crashes. A corrupt store refuses to start: exit
// nonzero with the failing record named. Without -data-dir lockd is
// memory-only, exactly as before.
//
// -partitions > 1 runs the entity-hash partitioned engine group: each
// partition is a full engine (own recovery core, stripe set, sequencer)
// and sessions whose declared body stays inside one partition never
// touch the others. Cross-partition and global-footprint transactions
// go through the cross-partition drain. The wire protocol is identical
// either way. -truncate-log (default on) discards log events below the
// earliest checkpoint whose owners are all settled, bounding recovery
// memory on long-lived servers at the cost of full-log inspection.
//
// The backoff flags pace the retries lockd itself drives: run-mode
// (stored-procedure) transactions and cascade re-runs. The k-th retry
// waits k*backoff, capped at -backoff-cap, jittered down by up to the
// -backoff-jitter fraction so colliding transactions desynchronize.
// Client-paced sessions (step/pipeline modes) choose their own backoff
// client-side.
//
// The policy names are those of internal/policy (2PL, tree, DDAG,
// DDAG-SX, altruistic, DTR, unrestricted); -init lists the entities of
// the initial structural state (edge entities like "A->B" configure the
// tree/DDAG shapes). On SIGTERM or SIGINT the server drains: it stops
// accepting, waits up to -drain-timeout for open sessions to finish,
// force-aborts the rest, verifies the committed schedule is
// serializable and exits 0 on a clean verdict.
//
// -pprof exposes Go's net/http/pprof handlers on a separate HTTP
// listener (profiles, heap, goroutine dumps); leave it unset in
// production unless the address is firewalled — the endpoint is
// unauthenticated by design.
//
// docs/OPERATIONS.md is the operator's manual (flag sizing, policy
// choice, metrics, drain behavior, profiling); docs/PROTOCOL.md
// specifies the wire format.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers on DefaultServeMux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"locksafe/internal/model"
	"locksafe/internal/policy"
	"locksafe/internal/runtime"
	"locksafe/internal/server"

	"net"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7654", "listen address")
	polName := flag.String("policy", "2PL", "locking policy: "+strings.Join(policy.Names(), ", "))
	initEnts := flag.String("init", "", "comma-separated entities of the initial structural state")
	partitions := flag.Int("partitions", 1, "entity-hash engine partitions (1 = single engine)")
	stripes := flag.Int("stripes", 0, "admission-gate stripes per partition (0 = size from GOMAXPROCS)")
	serialized := flag.Bool("serialized-gate", false, "use the single-mutex serialized gate (forces stripes=1)")
	shards := flag.Int("shards", 16, "lock-manager shards")
	mpl := flag.Int("mpl", 0, "max concurrently open sessions (0 = unbounded)")
	ckpt := flag.Int("checkpoint-every", 0, "events between recovery checkpoints (0 = default)")
	truncate := flag.Bool("truncate-log", true, "truncate the recovery log below settled checkpoints (bounds memory; full-log inspect unavailable past the cut)")
	dataDir := flag.String("data-dir", "", "durable store directory: WAL + checkpoints, restored on start (empty = memory-only)")
	fsync := flag.Bool("fsync", false, "fsync every WAL append (with -data-dir); acknowledged commits survive machine crashes")
	lease := flag.Duration("lease", 30*time.Second, "session lease; idle sessions are aborted after this (0 disables)")
	maxRetries := flag.Int("max-retries", 0, "per-transaction retry budget (0 = default, negative = none)")
	backoff := flag.Duration("backoff", 0, "base retry delay for engine-driven retries (run mode, cascade re-runs; 0 = default, negative = none)")
	backoffCap := flag.Duration("backoff-cap", 0, "cap on the linear retry delay (0 = default 100x base, negative = uncapped)")
	backoffJitter := flag.Float64("backoff-jitter", 0, "fraction of the retry delay randomized away, 0..1 (0 = default 0.5, negative = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long a drain waits for open sessions before force-aborting them")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled; unauthenticated, keep it loopback/firewalled)")
	flag.Parse()

	pol, ok := policy.ByName(*polName)
	if !ok {
		fmt.Fprintf(os.Stderr, "lockd: unknown policy %q (want one of %s)\n", *polName, strings.Join(policy.Names(), ", "))
		os.Exit(2)
	}
	init := model.NewState()
	if *initEnts != "" {
		for _, e := range strings.Split(*initEnts, ",") {
			if e = strings.TrimSpace(e); e != "" {
				init[model.Entity(e)] = struct{}{}
			}
		}
	}

	cfg := runtime.Config{
		Policy:          pol,
		Shards:          *shards,
		MPL:             *mpl,
		MaxRetries:      *maxRetries,
		Backoff:         *backoff,
		BackoffCap:      *backoffCap,
		BackoffJitter:   *backoffJitter,
		CheckpointEvery: *ckpt,
		GateStripes:     *stripes,
		SerializedGate:  *serialized,
		Lease:           *lease,
		Partitions:      *partitions,
		TruncateLog:     *truncate,
		DataDir:         *dataDir,
		Fsync:           *fsync,
	}
	srv, info, err := server.NewDurable(init, cfg)
	if err != nil {
		// A corrupt or unreadable store must not be silently rebuilt
		// over: the operator decides what to do with the evidence.
		fmt.Fprintf(os.Stderr, "lockd: restoring %s: %v\n", *dataDir, err)
		os.Exit(1)
	}
	if *dataDir != "" {
		fmt.Printf("lockd: restored %s — events=%d commits=%d parked-sessions=%d clean=%v torn=%v fsync=%v\n",
			*dataDir, info.Events, info.Commits, info.Sessions, info.Clean, info.Torn, *fsync)
	}

	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lockd: pprof listen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("lockd: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() {
			if err := http.Serve(pln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "lockd: pprof serve: %v\n", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("lockd: listening on %s policy=%s partitions=%d stripes=%s shards=%d lease=%v\n",
		ln.Addr(), pol.Name(), maxInt(*partitions, 1), gateDesc(*stripes, *serialized), *shards, *lease)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "lockd: serve: %v\n", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("lockd: %v received, draining (timeout %v)\n", s, *drainTimeout)
	}

	res, err := srv.Shutdown(*drainTimeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockd: drain: %v\n", err)
		os.Exit(1)
	}
	m := res.Metrics
	fmt.Printf("lockd: drained clean — commits=%d gaveup=%d aborts=%d (deadlock=%d policy=%d improper=%d cascade=%d lease=%d) events=%d serializable=true\n",
		m.Commits, m.GaveUp, m.Aborts(), m.DeadlockAborts, m.PolicyAborts, m.ImproperAborts, m.CascadeAborts, m.LeaseExpired, m.Events)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func gateDesc(stripes int, serialized bool) string {
	if serialized {
		return "serialized"
	}
	if stripes == 0 {
		return "auto"
	}
	return fmt.Sprint(stripes)
}
