module locksafe

go 1.24
